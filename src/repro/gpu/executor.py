"""Functional execution of device kernels on the simulated GPU.

The executor runs a :class:`~repro.core.kernel.Kernel` over a grid of blocks
and threads, exactly as a GPU would schedule it logically (every thread sees
its own ``thread_idx`` / ``block_idx``).  Two execution modes exist:

``sequential``
    Threads of a block run one after another in a plain Python loop.  Correct
    for any kernel that does not rely on intra-block synchronisation
    (``barrier``) for data exchange through shared memory.

``cooperative``
    Every thread of a block runs on its own OS thread, synchronised by a real
    :class:`threading.Barrier`.  Required for kernels such as BabelStream's
    ``Dot`` reduction that communicate through shared memory across barriers.

The executor is a *functional* simulator: it computes the right answer and
counts events (threads, barriers, atomics).  Kernel *durations* come from the
analytic model in :mod:`repro.gpu.timing`, not from Python wall-clock.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.errors import LaunchError
from ..core.intrinsics import Dim3, ThreadState, bind_thread_state
from ..core.kernel import Kernel, LaunchConfig

__all__ = ["ExecutionCounters", "ExecutionResult", "KernelExecutor"]


class ExecutionCounters:
    """Event counters shared by all threads of one launch."""

    __slots__ = ("threads_run", "blocks_run", "barriers", "atomics", "_lock")

    def __init__(self):
        self.threads_run = 0
        self.blocks_run = 0
        self.barriers = 0
        self.atomics = 0
        self._lock = threading.Lock()

    def record_barrier(self) -> None:
        with self._lock:
            self.barriers += 1

    def record_atomic(self) -> None:
        with self._lock:
            self.atomics += 1

    def record_thread(self) -> None:
        with self._lock:
            self.threads_run += 1

    def record_block(self) -> None:
        with self._lock:
            self.blocks_run += 1

    def as_dict(self) -> Dict[str, int]:
        return {
            "threads_run": self.threads_run,
            "blocks_run": self.blocks_run,
            "barriers": self.barriers,
            "atomics": self.atomics,
        }


@dataclass
class ExecutionResult:
    """Outcome of one functional launch."""

    kernel_name: str
    launch: LaunchConfig
    mode: str
    counters: ExecutionCounters
    wall_time_s: float
    shared_bytes_per_block: int = 0

    @property
    def threads_run(self) -> int:
        return self.counters.threads_run

    @property
    def blocks_run(self) -> int:
        return self.counters.blocks_run


def _iter_dim3(extent: Dim3):
    """Iterate all (x, y, z) indices of an extent, x fastest."""
    for z in range(extent.z):
        for y in range(extent.y):
            for x in range(extent.x):
                yield Dim3(x, y, z)


def kernel_uses_barrier(kern: Kernel) -> bool:
    """Heuristic: does the kernel body call ``barrier`` or allocate shared memory?"""
    try:
        src = inspect.getsource(kern.fn)
    except (OSError, TypeError):
        return True  # be safe: unknown source -> cooperative
    return ("barrier(" in src) or ("stack_allocation" in src) or ("shared_array" in src)


class KernelExecutor:
    """Runs kernels functionally over a simulated grid."""

    #: refuse cooperative launches with more OS threads per block than this
    MAX_COOPERATIVE_BLOCK = 1024
    #: refuse functional launches larger than this many total threads
    #: (the functional simulator is for correctness, not for 2^25-element runs)
    MAX_TOTAL_THREADS = 8_000_000

    def __init__(self, *, max_total_threads: Optional[int] = None):
        self.max_total_threads = max_total_threads or self.MAX_TOTAL_THREADS

    # ------------------------------------------------------------------ API
    def launch(
        self,
        kern: Kernel,
        args: Sequence,
        launch: LaunchConfig,
        *,
        mode: str = "auto",
    ) -> ExecutionResult:
        """Execute *kern* over the grid described by *launch*.

        Parameters
        ----------
        kern:
            The kernel (or plain callable) to run per thread.
        args:
            Positional arguments forwarded to every thread invocation.
        launch:
            Grid/block extents.
        mode:
            ``"auto"`` (default), ``"sequential"`` or ``"cooperative"``.
        """
        if not isinstance(kern, Kernel):
            kern = Kernel(kern)
        launch.validate()
        total = launch.total_threads
        if total > self.max_total_threads:
            raise LaunchError(
                f"functional launch of {total} threads exceeds the simulator "
                f"limit of {self.max_total_threads}; use the vectorized "
                "reference implementation / timing model for large problems"
            )
        if mode == "auto":
            mode = "cooperative" if kernel_uses_barrier(kern) else "sequential"
        if mode not in ("sequential", "cooperative"):
            raise LaunchError(f"unknown execution mode {mode!r}")
        if mode == "cooperative" and launch.threads_per_block > self.MAX_COOPERATIVE_BLOCK:
            raise LaunchError(
                f"cooperative mode supports at most {self.MAX_COOPERATIVE_BLOCK} "
                f"threads per block, got {launch.threads_per_block}"
            )

        counters = ExecutionCounters()
        start = time.perf_counter()
        max_shared = 0
        if mode == "sequential":
            max_shared = self._run_sequential(kern, args, launch, counters)
        else:
            max_shared = self._run_cooperative(kern, args, launch, counters)
        wall = time.perf_counter() - start

        return ExecutionResult(
            kernel_name=kern.name,
            launch=launch,
            mode=mode,
            counters=counters,
            wall_time_s=wall,
            shared_bytes_per_block=max_shared,
        )

    # ----------------------------------------------------------- sequential
    def _run_sequential(self, kern, args, launch, counters) -> int:
        max_shared = 0
        for block in _iter_dim3(launch.grid_dim):
            block_shared: Dict[str, "np.ndarray"] = {}
            counters.record_block()
            for thread in _iter_dim3(launch.block_dim):
                state = ThreadState(
                    thread_idx=thread,
                    block_idx=block,
                    block_dim=launch.block_dim,
                    grid_dim=launch.grid_dim,
                    block_shared=block_shared,
                    block_barrier=None,
                    counters=counters,
                )
                with bind_thread_state(state):
                    kern(*args)
                counters.record_thread()
            max_shared = max(max_shared, _shared_bytes(block_shared))
        return max_shared

    # ---------------------------------------------------------- cooperative
    def _run_cooperative(self, kern, args, launch, counters) -> int:
        nthreads = launch.threads_per_block
        max_shared = 0
        for block in _iter_dim3(launch.grid_dim):
            block_shared: Dict[str, "np.ndarray"] = {}
            barrier = threading.Barrier(nthreads)
            errors: List[BaseException] = []
            err_lock = threading.Lock()
            counters.record_block()

            def worker(thread: Dim3):
                state = ThreadState(
                    thread_idx=thread,
                    block_idx=block,
                    block_dim=launch.block_dim,
                    grid_dim=launch.grid_dim,
                    block_shared=block_shared,
                    block_barrier=barrier,
                    counters=counters,
                )
                try:
                    with bind_thread_state(state):
                        kern(*args)
                    counters.record_thread()
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    with err_lock:
                        errors.append(exc)
                    barrier.abort()

            workers = [threading.Thread(target=worker, args=(t,), daemon=True)
                       for t in _iter_dim3(launch.block_dim)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            if errors:
                raise LaunchError(
                    f"kernel {kern.name!r} raised in block {block}: {errors[0]!r}"
                ) from errors[0]
            max_shared = max(max_shared, _shared_bytes(block_shared))
        return max_shared


def _shared_bytes(block_shared: Dict) -> int:
    total = 0
    for arr in block_shared.values():
        total += getattr(arr, "nbytes", 0)
    return int(total)
