"""Simulated GPU hardware substrate.

Provides the device specifications (Table 1 of the paper), memory/transfer
models, the functional kernel executor, the occupancy calculator, the analytic
timing model and the roofline model used to regenerate Figure 2.
"""

from .executor import ExecutionCounters, ExecutionResult, KernelExecutor
from .memory import Allocation, AllocationTracker, MemorySpace, TransferModel
from .vector_executor import VectorThreadState, kernel_vector_safe
from .occupancy import OccupancyResult, compute_occupancy
from .roofline import Roofline, RooflinePoint, classify_workload
from .specs import A100_SXM, H100_NVL, MI250X, MI300A, GPUSpec, get_gpu, list_gpus, register_gpu
from .timing import KernelTimingModel, TimingBreakdown, estimate_cache_traffic

__all__ = [
    "ExecutionCounters", "ExecutionResult", "KernelExecutor",
    "VectorThreadState", "kernel_vector_safe",
    "Allocation", "AllocationTracker", "MemorySpace", "TransferModel",
    "OccupancyResult", "compute_occupancy",
    "Roofline", "RooflinePoint", "classify_workload",
    "GPUSpec", "get_gpu", "list_gpus", "register_gpu",
    "H100_NVL", "MI300A", "A100_SXM", "MI250X",
    "KernelTimingModel", "TimingBreakdown", "estimate_cache_traffic",
]
