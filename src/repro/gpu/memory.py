"""Device memory spaces, allocation tracking and the transfer model.

The simulated device keeps device allocations in host NumPy arrays but tracks
them against the GPU's memory capacity so that out-of-memory behaviour,
allocation accounting and host<->device transfer times are all modelled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.dtypes import DType, dtype_from_any
from ..core.errors import DeviceError, OutOfMemoryError
from .specs import GPUSpec

__all__ = ["MemorySpace", "Allocation", "AllocationTracker", "TransferModel"]


class MemorySpace:
    """Device memory space identifiers."""

    GLOBAL = "global"
    SHARED = "shared"
    CONSTANT = "constant"
    HOST = "host"


@dataclass
class Allocation:
    """One live device allocation."""

    alloc_id: int
    nbytes: int
    dtype: DType
    count: int
    space: str = MemorySpace.GLOBAL
    label: str = ""
    freed: bool = False


class AllocationTracker:
    """Tracks live device allocations against a GPU's memory capacity."""

    def __init__(self, spec: GPUSpec, *, reserve_fraction: float = 0.02):
        self.spec = spec
        #: bytes reserved for runtime/context (not available to the user)
        self.reserved_bytes = int(spec.memory_bytes * reserve_fraction)
        self._allocations: Dict[int, Allocation] = {}
        self._next_id = 1
        self.bytes_in_use = 0
        self.peak_bytes = 0
        self.total_allocated_bytes = 0
        self.alloc_count = 0
        self.free_count = 0

    @property
    def capacity_bytes(self) -> int:
        return self.spec.memory_bytes - self.reserved_bytes

    @property
    def bytes_free(self) -> int:
        return self.capacity_bytes - self.bytes_in_use

    def allocate(self, count: int, dtype, *, space: str = MemorySpace.GLOBAL,
                 label: str = "") -> Allocation:
        """Register an allocation of *count* elements of *dtype*."""
        if count <= 0:
            raise DeviceError(f"allocation count must be positive, got {count}")
        dt = dtype_from_any(dtype)
        nbytes = count * dt.sizeof
        if nbytes > self.bytes_free:
            raise OutOfMemoryError(
                f"allocation of {nbytes / 1e9:.2f} GB exceeds free device memory "
                f"({self.bytes_free / 1e9:.2f} GB of {self.capacity_bytes / 1e9:.2f} GB) "
                f"on {self.spec.full_name}"
            )
        alloc = Allocation(self._next_id, nbytes, dt, count, space, label)
        self._allocations[alloc.alloc_id] = alloc
        self._next_id += 1
        self.bytes_in_use += nbytes
        self.total_allocated_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)
        self.alloc_count += 1
        return alloc

    def free(self, alloc: Allocation) -> None:
        """Release an allocation; double frees raise."""
        live = self._allocations.get(alloc.alloc_id)
        if live is None or live.freed:
            raise DeviceError(f"double free of allocation #{alloc.alloc_id}")
        live.freed = True
        del self._allocations[alloc.alloc_id]
        self.bytes_in_use -= live.nbytes
        self.free_count += 1

    @property
    def live_allocations(self) -> int:
        return len(self._allocations)

    def summary(self) -> Dict[str, float]:
        """Allocation accounting snapshot (bytes and counts)."""
        return {
            "bytes_in_use": self.bytes_in_use,
            "peak_bytes": self.peak_bytes,
            "total_allocated_bytes": self.total_allocated_bytes,
            "live_allocations": self.live_allocations,
            "alloc_count": self.alloc_count,
            "free_count": self.free_count,
            "capacity_bytes": self.capacity_bytes,
        }


@dataclass
class TransferModel:
    """Models host<->device copy time over the link described by the spec."""

    spec: GPUSpec
    #: fixed per-transfer latency in microseconds
    latency_us: float = 10.0

    def transfer_time_s(self, nbytes: int) -> float:
        """Predicted copy time in seconds for *nbytes*."""
        if nbytes < 0:
            raise DeviceError("transfer size cannot be negative")
        bw = self.spec.transfer_bw_gbs * 1e9
        return self.latency_us * 1e-6 + nbytes / bw

    def effective_bandwidth_gbs(self, nbytes: int) -> float:
        """Achieved GB/s for one transfer, including latency."""
        t = self.transfer_time_s(nbytes)
        if t == 0:
            return 0.0
        return nbytes / t / 1e9
