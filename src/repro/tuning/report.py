"""Tuned-vs-untuned performance portability (the Table 5 metric, revisited).

The paper's Table 5 Φ is computed from one hardcoded launch configuration
per kernel.  This report recomputes the same Eq. 4 application-efficiency
metric twice per workload — once from the untuned default configurations
and once with *both* the portable Mojo implementation and the vendor
baseline tuned by :class:`~repro.tuning.tuner.Tuner` — which answers the
question the hardcoded table cannot: does Mojo's portability survive when
every platform is allowed its own best launch?

Efficiencies are time-based (``e = t_baseline / t_mojo``), which for a
fixed problem size is identical to the per-workload figure-of-merit ratios
Table 5 uses (bandwidth and GFLOP/s are both ∝ 1/time).  Searches run
against an ephemeral in-memory :class:`~repro.tuning.db.TuningDB` so
generating a report never pollutes ``.repro_tune/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..harness.results import ResultTable
from ..harness.runner import MeasurementProtocol
from ..metrics.portability import arithmetic_mean_phi
from .db import TuningDB
from .tuner import Tuner

__all__ = ["TuningReportRow", "TuningReport", "tuning_report"]

#: (gpu, vendor-baseline backend) pairs of the paper's evaluation
PLATFORMS = (("h100", "cuda"), ("mi300a", "hip"))

#: tuning-sensitive representative configuration per workload (sizes where
#: launch choice matters and the analytic path stays fast)
REPORT_PARAMS: Dict[str, Dict[str, object]] = {
    "stencil": {"L": 64},
    "babelstream": {"n": 1 << 20},
    "minibude": {},
    "hartreefock": {"natoms": 64},
}


@dataclass
class TuningReportRow:
    """Efficiencies for one workload on one platform."""

    workload: str
    platform: str
    untuned_efficiency: float
    tuned_efficiency: float
    #: tuned-over-untuned speedup of the Mojo side on this platform
    mojo_speedup: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "platform": self.platform,
            "untuned_efficiency": self.untuned_efficiency,
            "tuned_efficiency": self.tuned_efficiency,
            "mojo_speedup": self.mojo_speedup,
        }


@dataclass
class TuningReport:
    """Tuned vs untuned Φ across the four workloads."""

    rows: List[TuningReportRow] = field(default_factory=list)
    budget: int = 8

    def phis(self) -> Dict[str, Tuple[float, float]]:
        """{workload: (untuned Φ, tuned Φ)} over the platform set."""
        grouped: Dict[str, List[TuningReportRow]] = {}
        for row in self.rows:
            grouped.setdefault(row.workload, []).append(row)
        return {
            name: (arithmetic_mean_phi([r.untuned_efficiency for r in rows]),
                   arithmetic_mean_phi([r.tuned_efficiency for r in rows]))
            for name, rows in grouped.items()
        }

    def table(self) -> ResultTable:
        table = ResultTable(
            columns=["workload", "platform", "untuned_eff", "tuned_eff",
                     "mojo_speedup"],
            title="Performance portability from tuned vs untuned points "
                  "(Eq. 4)",
        )
        for row in self.rows:
            table.add_row(workload=row.workload, platform=row.platform,
                          untuned_eff=row.untuned_efficiency,
                          tuned_eff=row.tuned_efficiency,
                          mojo_speedup=row.mojo_speedup)
        for name, (untuned, tuned) in self.phis().items():
            table.add_row(workload=name, platform="Φ (all)",
                          untuned_eff=untuned, tuned_eff=tuned,
                          mojo_speedup=float("nan"))
        return table

    def to_markdown(self) -> str:
        lines = [
            "## Tuned performance portability (Table 5 revisited)",
            "",
            "Φ recomputed from launch-tuned points: both the Mojo kernel and "
            "the vendor baseline are tuned per platform by `repro tune` "
            f"(budget {self.budget} per side) before the Eq. 4 efficiency "
            "is taken.  `mojo_speedup` is how much tuning improved the "
            "portable implementation on that platform.",
            "",
            self.table().to_markdown(),
        ]
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "budget": self.budget,
            "rows": [r.as_dict() for r in self.rows],
            "phi": {name: {"untuned": u, "tuned": t}
                    for name, (u, t) in self.phis().items()},
        }


def _measure_untuned(workload, request) -> float:
    result = workload.run(request)
    return float(result.metrics["kernel_time_ms"])


def tuning_report(*, budget: int = 8, db: Optional[TuningDB] = None,
                  workloads: Optional[List[str]] = None) -> TuningReport:
    """Compute tuned and untuned Φ for the paper's workload/platform matrix."""
    from ..workloads import get_workload

    db = db if db is not None else TuningDB(disk_dir=None)
    report = TuningReport(budget=budget)
    names = workloads if workloads is not None else list(REPORT_PARAMS)
    for name in names:
        workload = get_workload(name)
        params = REPORT_PARAMS.get(name, {})
        for gpu, baseline_backend in PLATFORMS:
            untuned: Dict[str, float] = {}
            tuned: Dict[str, float] = {}
            for backend in ("mojo", baseline_backend):
                request = workload.make_request(
                    gpu=gpu, backend=backend, params=dict(params),
                    verify=False,
                    protocol=MeasurementProtocol(warmup=0, repeats=1))
                untuned[backend] = _measure_untuned(workload, request)
                outcome = Tuner(workload, request, db=db, budget=budget,
                                probe=False).search()
                tuned[backend] = (outcome.record.score_ms
                                  if outcome.record is not None
                                  else untuned[backend])
            report.rows.append(TuningReportRow(
                workload=name,
                platform=gpu,
                untuned_efficiency=untuned[baseline_backend]
                / untuned["mojo"],
                tuned_efficiency=tuned[baseline_backend] / tuned["mojo"],
                mojo_speedup=untuned["mojo"] / tuned["mojo"],
            ))
    return report
