"""Functional candidate probes built on captured device graphs.

A tuning candidate is scored by the analytic bench path, but a winning
launch configuration must also *execute*: a block shape that trips the
functional simulator is not a winner.  The probe runs each measured
candidate's kernel once through the thread-level simulator at a reduced
problem size — and it does so the cheap way PR 4 introduced: the pipeline
(H2D → kernel → D2H) is enqueued **once** under :meth:`DeviceContext.capture`
and the per-repeat evaluations are :meth:`DeviceGraph.replay` calls, which
re-execute the pre-instantiated launch thunks instead of rebuilding
contexts, buffers and launches per repeat.

Workload adapters opt in by implementing
:meth:`repro.workloads.base.Workload.tuning_probe`, which enqueues their
pipeline on the supplied context and returns the captured graph.  Adapters
without a probe (the compute-bound kernels whose arg setup is deck/system
shaped) are scored by the bench path alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import DeadlineExceeded, ReproError

__all__ = ["ProbeResult", "run_probe", "DEFAULT_PROBE_TIMEOUT_MS"]

#: wall-clock budget per candidate probe (capture + all replays); generous —
#: it exists to stop a *hung* candidate from stalling the whole search, not
#: to disqualify a slow one
DEFAULT_PROBE_TIMEOUT_MS = 30_000.0


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of functionally probing one candidate."""

    #: the graph's modelled critical-path duration for one replay
    makespan_ms: float
    #: replays executed (capture happens once, before any of them)
    replays: int
    #: operations in the captured pipeline
    operations: int
    #: kernels in the captured pipeline
    kernels: int
    ok: bool = True
    error: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "makespan_ms": self.makespan_ms,
            "replays": self.replays,
            "operations": self.operations,
            "kernels": self.kernels,
            "ok": self.ok,
            "error": self.error,
        }


def run_probe(workload, request, *, repeats: int = 2,
              timeout_ms: Optional[float] = DEFAULT_PROBE_TIMEOUT_MS,
              ) -> Optional[ProbeResult]:
    """Capture the workload's probe pipeline once and replay it *repeats* times.

    Returns None when the workload declares no probe.  A candidate whose
    capture or replay raises yields ``ok=False`` with the error message —
    the tuner treats that as a disqualified candidate rather than a crash.
    The whole probe (capture + replays) runs under a
    :class:`~repro.resilience.Deadline` of *timeout_ms* (None disables it):
    a candidate that *hangs* the functional simulator is recorded as a
    failed candidate instead of stalling ``repro tune`` forever.
    """
    if timeout_ms is not None:
        from ..resilience import Deadline

        try:
            return Deadline(timeout_ms).run(_probe_inline, workload, request,
                                            repeats)
        except DeadlineExceeded as exc:
            return ProbeResult(makespan_ms=float("inf"), replays=0,
                               operations=0, kernels=0, ok=False,
                               error=str(exc))
    return _probe_inline(workload, request, repeats)


def _probe_inline(workload, request, repeats: int) -> Optional[ProbeResult]:
    """The unbounded probe body (capture once, replay *repeats* times)."""
    try:
        graph = workload.tuning_probe(request)
    except ReproError as exc:
        return ProbeResult(makespan_ms=float("inf"), replays=0, operations=0,
                           kernels=0, ok=False, error=str(exc))
    if graph is None:
        return None
    try:
        for _ in range(max(int(repeats), 1)):
            graph.replay()
    except ReproError as exc:
        return ProbeResult(makespan_ms=float("inf"), replays=graph.replays,
                           operations=graph.num_operations,
                           kernels=graph.num_kernels, ok=False,
                           error=str(exc))
    return ProbeResult(makespan_ms=graph.makespan_ms, replays=graph.replays,
                       operations=graph.num_operations,
                       kernels=graph.num_kernels)
