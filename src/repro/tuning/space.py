"""Tuning spaces: the launch/execution knobs a workload exposes to the tuner.

A :class:`TuningSpace` is the cartesian product of :class:`TuningKnob` value
lists, optionally filtered by a constraint predicate.  Knobs come in two
kinds: ``"param"`` knobs override entries of the workload's ``params``
mapping (block shapes, work-group sizes) and ``"field"`` knobs override
first-class :class:`~repro.workloads.base.RunRequest` fields (``fast_math``,
``streams``).  A :class:`TuningConfig` is one point of the space — a frozen
pair of override mappings that :meth:`TuningConfig.apply` merges into a
request.

Each workload adapter declares its space via
:meth:`repro.workloads.base.Workload.tuning_space`; everything else in the
tuning subsystem (pruning, search, the database) is workload-agnostic and
works purely on spaces and configs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError

__all__ = ["TuningKnob", "TuningConfig", "TuningSpace"]


def _freeze(value: object) -> object:
    """Hashable form of a knob value (lists become tuples)."""
    if isinstance(value, list):
        return tuple(value)
    return value


@dataclass(frozen=True)
class TuningKnob:
    """One tunable dimension: a named, ordered list of candidate values.

    ``kind`` selects where the value lands when a config is applied:
    ``"param"`` into the request's workload params, ``"field"`` onto the
    request itself (``fast_math``, ``streams``, ``executor``).  Value order
    matters: the hill-climb strategy treats adjacent values as neighbours.
    """

    name: str
    values: Tuple[object, ...]
    kind: str = "param"

    def __post_init__(self):
        if self.kind not in ("param", "field"):
            raise ConfigurationError(
                f"knob {self.name!r} has unknown kind {self.kind!r}; "
                "expected 'param' or 'field'"
            )
        if not self.values:
            raise ConfigurationError(f"knob {self.name!r} has no values")
        object.__setattr__(self, "values",
                           tuple(_freeze(v) for v in self.values))


@dataclass(frozen=True)
class TuningConfig:
    """One candidate configuration: frozen param and field overrides."""

    #: workload-param overrides, as a sorted item tuple (hashable)
    param_items: Tuple[Tuple[str, object], ...]
    #: request-field overrides, as a sorted item tuple (hashable)
    field_items: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, params: Optional[Mapping[str, object]] = None,
             fields: Optional[Mapping[str, object]] = None) -> "TuningConfig":
        return cls(
            param_items=tuple(sorted((k, _freeze(v))
                                     for k, v in (params or {}).items())),
            field_items=tuple(sorted((k, _freeze(v))
                                     for k, v in (fields or {}).items())),
        )

    @property
    def params(self) -> Dict[str, object]:
        return dict(self.param_items)

    @property
    def fields(self) -> Dict[str, object]:
        return dict(self.field_items)

    def value(self, name: str, default: object = None) -> object:
        """Look a knob value up by name, params first."""
        for k, v in self.param_items + self.field_items:
            if k == name:
                return v
        return default

    def apply(self, request):
        """A copy of *request* with this config's overrides merged in."""
        tuned = request.with_params(**self.params)
        if self.field_items:
            tuned = tuned.replace(**self.fields)
        return tuned

    def as_dict(self) -> Dict[str, object]:
        return {"params": self.params, "fields": self.fields}

    def label(self) -> str:
        """Compact human-readable form, e.g. ``block_shape=(4,4,4) fast_math=True``."""
        parts = [f"{k}={v}" for k, v in self.param_items + self.field_items]
        return " ".join(parts) or "<default>"


class TuningSpace:
    """Cartesian product of tuning knobs with an optional constraint."""

    def __init__(self, knobs: Sequence[TuningKnob],
                 constraint: Optional[Callable[[Mapping[str, object]], bool]] = None):
        if not knobs:
            raise ConfigurationError("a tuning space needs at least one knob")
        names = [k.name for k in knobs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate knob names in {names}")
        self.knobs: Tuple[TuningKnob, ...] = tuple(knobs)
        self.constraint = constraint

    # ------------------------------------------------------------ enumeration
    @property
    def size(self) -> int:
        """Number of candidate configurations (constraint applied)."""
        if self.constraint is None:
            size = 1
            for knob in self.knobs:
                size *= len(knob.values)
            return size
        return sum(1 for _ in self.candidates())

    def candidates(self) -> Iterator[TuningConfig]:
        """Yield every configuration of the space, in knob-declaration order."""
        for combo in itertools.product(*(k.values for k in self.knobs)):
            values = dict(zip((k.name for k in self.knobs), combo))
            if self.constraint is not None and not self.constraint(values):
                continue
            yield self._config(values)

    def _config(self, values: Mapping[str, object]) -> TuningConfig:
        params = {k.name: values[k.name] for k in self.knobs
                  if k.kind == "param"}
        fields = {k.name: values[k.name] for k in self.knobs
                  if k.kind == "field"}
        return TuningConfig.make(params, fields)

    # ------------------------------------------------------------- structure
    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(k.name for k in self.knobs if k.kind == "param")

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(k.name for k in self.knobs if k.kind == "field")

    def baseline(self, request) -> TuningConfig:
        """The untuned point of the space: the request's current values.

        Field knobs read the request attribute; param knobs the validated
        params mapping.  The baseline need not be a member of the knobs'
        value lists — it is whatever the request would run as-is.
        """
        params = {}
        fields = {}
        for knob in self.knobs:
            if knob.kind == "param":
                params[knob.name] = request.params.get(knob.name)
            else:
                fields[knob.name] = getattr(request, knob.name)
        return TuningConfig.make(params, fields)

    def neighbors(self, config: TuningConfig) -> List[TuningConfig]:
        """One-knob moves to adjacent values (the hill-climb neighbourhood)."""
        values = {**config.params, **config.fields}
        out: List[TuningConfig] = []
        for knob in self.knobs:
            current = _freeze(values.get(knob.name))
            try:
                idx = knob.values.index(current)
            except ValueError:
                # Baseline values may sit outside the knob's list; every
                # listed value is then a neighbour of it.
                candidates = knob.values
            else:
                candidates = tuple(knob.values[i] for i in (idx - 1, idx + 1)
                                   if 0 <= i < len(knob.values))
            for value in candidates:
                if value == current:
                    continue
                moved = dict(values)
                moved[knob.name] = value
                if self.constraint is not None and not self.constraint(moved):
                    continue
                out.append(self._config(moved))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(len(k.values)) for k in self.knobs)
        return (f"TuningSpace({', '.join(k.name for k in self.knobs)}; "
                f"{dims} = {self.size} candidates)")
