"""Model-guided candidate pruning: occupancy + roofline, before measurement.

Measuring a tuning candidate costs a full (modelled) workload run plus a
functional capture/replay probe; most of a launch space is not worth that.
This module scores every candidate with the two *cheap* analytic models the
repository already trusts:

* the **occupancy model** (:func:`repro.gpu.occupancy.compute_occupancy`)
  rejects infeasible launches outright (block beyond the device thread
  limit, shared memory beyond the block budget) and derates candidates
  whose resident-warp count cannot hide memory latency;
* the **roofline model** (:class:`repro.gpu.roofline.Roofline`) bounds each
  candidate's attainable throughput from the kernel's arithmetic intensity,
  so the estimate respects the memory/compute bound the paper's Figure 2
  establishes per workload.

The resulting :class:`CandidateEstimate` is an *upper-bound style* score —
close in structure to the full timing model but intentionally independent of
the compile pipeline, so the tuner's "modelled vs measured" ranking is a
meaningful comparison rather than a tautology.  Candidates whose estimated
cost exceeds ``keep_ratio`` times the best estimate are pruned and never
measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import LaunchError, ReproError
from ..core.kernel import KernelModel, LaunchConfig
from ..gpu.occupancy import compute_occupancy
from ..gpu.roofline import Roofline
from ..gpu.specs import GPUSpec, get_gpu
from .space import TuningConfig, TuningSpace

__all__ = ["CandidateEstimate", "PruneReport", "estimate_candidate",
           "prune_space", "DEFAULT_KEEP_RATIO"]

#: candidates estimated slower than ``keep_ratio`` x the best estimate are
#: pruned before measurement
DEFAULT_KEEP_RATIO = 2.0

#: occupancy needed to hide memory latency (coarse, pattern-independent —
#: the full timing model refines this per access pattern)
_OCC_NEEDED = 0.35

#: fraction of the roofline compute roof a well-behaved kernel reaches
_COMPUTE_EFFICIENCY = 0.65

#: coarse register estimate per thread (mirrors the compiler's baseline
#: ``working_values * register_scale + bias`` without invoking the pipeline)
def _register_estimate(model: KernelModel) -> int:
    return max(int(model.working_values * 1.1) + 4, 16)


@dataclass(frozen=True)
class CandidateEstimate:
    """Occupancy/roofline estimate for one tuning candidate."""

    config: TuningConfig
    feasible: bool
    #: why an infeasible candidate was rejected ("" when feasible)
    reason: str
    #: estimated kernel cost in ms (``inf`` when infeasible)
    modelled_ms: float
    occupancy: float = 0.0
    #: waves of blocks over the device (tail-effect indicator)
    waves: float = 0.0
    #: "memory" / "compute" / "atomic" — which term dominated the estimate
    bound: str = ""

    def as_dict(self) -> Dict[str, object]:
        out = {
            "config": self.config.as_dict(),
            "feasible": self.feasible,
            "modelled_ms": None if math.isinf(self.modelled_ms)
            else self.modelled_ms,
            "occupancy": self.occupancy,
            "bound": self.bound,
        }
        if self.reason:
            out["reason"] = self.reason
        return out


def estimate_candidate(gpu, model: KernelModel, launch: LaunchConfig,
                       config: TuningConfig, *,
                       traffic: Optional[Tuple[float, float]] = None
                       ) -> CandidateEstimate:
    """Score one candidate from occupancy + roofline, without compiling.

    *traffic* optionally supplies exact ``(read_bytes, write_bytes)`` from
    the symbolic region analysis (:func:`repro.analysis.regions.launch_traffic`);
    when given it replaces the coarse ``bytes_per_thread × active`` memory
    estimate, so guard-masked tails and stencil halos stop inflating the
    memory term.
    """
    spec: GPUSpec = get_gpu(gpu)
    try:
        occ = compute_occupancy(
            spec, launch.threads_per_block,
            registers_per_thread=_register_estimate(model),
            shared_bytes_per_block=model.shared_bytes_per_block,
            num_blocks=launch.num_blocks,
        )
    except LaunchError as exc:
        return CandidateEstimate(config=config, feasible=False,
                                 reason=str(exc), modelled_ms=float("inf"))

    active = launch.total_threads * model.active_fraction
    if traffic is not None:
        total_bytes = float(traffic[0]) + float(traffic[1])
    else:
        total_bytes = model.bytes_per_thread() * active
    total_flops = model.total_flops(active)

    # Latency hiding and device fill, as coarse occupancy-derived derates.
    latency = min(1.0, occ.occupancy / _OCC_NEEDED) if _OCC_NEEDED else 1.0
    latency = max(latency, 0.05)
    fill = 1.0
    if occ.waves > 0:
        fill = occ.waves / math.ceil(occ.waves) if occ.waves > 1.0 \
            else occ.waves
        fill = max(fill, 0.05)

    # Memory side: the roofline's bandwidth roof, derated.
    mem_bw = spec.peak_bandwidth_bytes * latency * fill
    memory_s = total_bytes / mem_bw if total_bytes else 0.0

    # Compute side: the roofline bound at the kernel's arithmetic intensity
    # caps the reachable FLOP rate; occupancy derates it further.
    roofline = Roofline(spec)
    ai = model.arithmetic_intensity()
    if total_flops:
        if math.isinf(ai):  # no global traffic: pure compute roof
            roof = roofline.peak_flops(model.dtype.name)
        else:
            roof = roofline.attainable(ai, model.dtype.name)
        roof *= _COMPUTE_EFFICIENCY * max(min(1.0, occ.occupancy / 0.25), 0.1)
        compute_s = total_flops / roof if roof > 0 else float("inf")
    else:
        compute_s = 0.0

    atomic_s = 0.0
    if model.atomics:
        atomic_s = (model.atomics * active) / (spec.atomic_gups * 1e9)

    cost_s = max(memory_s, compute_s) + atomic_s \
        + spec.launch_overhead_us * 1e-6
    if atomic_s > max(memory_s, compute_s):
        bound = "atomic"
    elif memory_s >= compute_s:
        bound = "memory"
    else:
        bound = "compute"
    return CandidateEstimate(
        config=config, feasible=True, reason="", modelled_ms=cost_s * 1e3,
        occupancy=occ.occupancy, waves=occ.waves, bound=bound,
    )


def _probe_traffic(workload, request,
                   launch: LaunchConfig) -> Optional[Tuple[float, float]]:
    """Exact (read, write) bytes for one candidate, or None to fall back."""
    try:
        probe = workload.region_probe(request)
        if probe is None:
            return None
        kern, args = probe
        from ..analysis.regions import launch_traffic

        return launch_traffic(kern, args, launch)
    except Exception:  # noqa: BLE001 - analysis must never break tuning
        return None


@dataclass
class PruneReport:
    """Outcome of the pre-measurement pruning pass over a space."""

    estimates: List[CandidateEstimate] = field(default_factory=list)
    kept: List[CandidateEstimate] = field(default_factory=list)
    pruned: List[CandidateEstimate] = field(default_factory=list)
    keep_ratio: float = DEFAULT_KEEP_RATIO

    @property
    def space_size(self) -> int:
        return len(self.estimates)

    @property
    def pruned_fraction(self) -> float:
        if not self.estimates:
            return 0.0
        return len(self.pruned) / len(self.estimates)

    def as_dict(self) -> Dict[str, object]:
        return {
            "space_size": self.space_size,
            "kept": len(self.kept),
            "pruned": len(self.pruned),
            "pruned_fraction": self.pruned_fraction,
            "keep_ratio": self.keep_ratio,
        }


def prune_space(workload, request, space: TuningSpace, *,
                keep_ratio: float = DEFAULT_KEEP_RATIO,
                enabled: bool = True) -> PruneReport:
    """Estimate every candidate of *space* and drop the hopeless ones.

    A candidate is pruned when it is infeasible (the occupancy model rejects
    the launch) or when its occupancy/roofline cost estimate exceeds
    ``keep_ratio`` times the best estimate in the space.  ``enabled=False``
    keeps every feasible candidate (used to validate that pruning does not
    change winners).  Kept candidates are returned best-estimate-first.

    Workloads exposing :meth:`~repro.workloads.base.Workload.region_probe`
    get their memory term from the symbolic region analysis — exact
    bytes moved under each candidate's launch — instead of the coarse
    per-thread model; a probe or analysis failure silently falls back.
    """
    report = PruneReport(keep_ratio=keep_ratio)
    for config in space.candidates():
        tuned = config.apply(request)
        try:
            model, launch = workload.tuning_model(tuned)
        except ReproError as exc:
            estimate = CandidateEstimate(config=config, feasible=False,
                                         reason=str(exc),
                                         modelled_ms=float("inf"))
        else:
            estimate = estimate_candidate(tuned.gpu, model, launch, config,
                                          traffic=_probe_traffic(
                                              workload, tuned, launch))
        report.estimates.append(estimate)

    feasible = [e for e in report.estimates if e.feasible]
    feasible.sort(key=lambda e: e.modelled_ms)
    if feasible and enabled:
        cutoff = feasible[0].modelled_ms * keep_ratio
        report.kept = [e for e in feasible if e.modelled_ms <= cutoff]
        report.pruned = [e for e in report.estimates
                         if e not in report.kept]
    else:
        report.kept = feasible
        report.pruned = [e for e in report.estimates if not e.feasible]
    return report
