"""Autotuning subsystem: model-guided launch search with a persistent DB.

The paper's portability claim rests on per-architecture launch and tiling
choices (block-size sweeps in Figures 3-4, fast-math and register pressure
in Figures 6-7); this package makes those choices a searched, remembered
artefact instead of a hardcoded constant:

* :mod:`~repro.tuning.space` — the knobs a workload exposes
  (:class:`TuningSpace` / :class:`TuningConfig`);
* :mod:`~repro.tuning.model` — occupancy/roofline candidate pruning, run
  *before* any measurement;
* :mod:`~repro.tuning.tuner` — budgeted search (exhaustive or seeded
  random + hill-climb) scoring candidates on the analytic bench path, with
  capture/replay functional probes;
* :mod:`~repro.tuning.db` — the :class:`TuningDB` (in-memory LRU +
  ``.repro_tune/`` JSON store) that persists winners per problem key;
* :mod:`~repro.tuning.report` — tuned-vs-untuned Φ (Table 5 revisited).

Requests opt in through ``RunRequest.tune``: ``"cached"`` applies a
remembered winner when one exists, ``"search"`` runs a search on a DB miss
first.  :func:`resolve_tuning` is the single entry point the workload base
class calls.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .db import (
    DEFAULT_TUNE_DIR,
    TuningDB,
    TuningRecord,
    clear_tuning_db,
    configure_tuning_db,
    default_tuning_db,
    tuning_db_info,
)
from .model import CandidateEstimate, PruneReport, estimate_candidate, prune_space
from .probe import ProbeResult, run_probe
from .report import TuningReport, tuning_report
from .space import TuningConfig, TuningKnob, TuningSpace
from .tuner import DEFAULT_BUDGET, STRATEGIES, Evaluation, Tuner, TuningOutcome

__all__ = [
    "TuningKnob", "TuningConfig", "TuningSpace",
    "CandidateEstimate", "PruneReport", "estimate_candidate", "prune_space",
    "ProbeResult", "run_probe",
    "Tuner", "TuningOutcome", "Evaluation", "STRATEGIES", "DEFAULT_BUDGET",
    "TuningDB", "TuningRecord", "DEFAULT_TUNE_DIR", "default_tuning_db",
    "configure_tuning_db", "tuning_db_info", "clear_tuning_db",
    "TuningReport", "tuning_report",
    "resolve_tuning",
]


def resolve_tuning(workload, request, *, db: Optional[TuningDB] = None,
                   ) -> Tuple[object, Dict[str, object]]:
    """Apply the request's ``tune`` mode; returns ``(request, info)``.

    ``"cached"`` consults the tuning database and applies the remembered
    winner when one exists (a miss runs untuned); ``"search"`` additionally
    runs a budgeted :class:`Tuner` search on a miss and persists the result,
    so only the first run of a problem pays for the search.  The returned
    info dict lands in the result's provenance under ``"tuning"``.
    """
    info: Dict[str, object] = {"mode": request.tune, "applied": False}
    space = workload.tuning_space(request)
    if space is None:
        info["reason"] = "no-tuning-space"
        return request, info
    db = db if db is not None else default_tuning_db()
    record = db.get(request, space)
    if record is None and request.tune == "search":
        outcome = Tuner(workload, request, space=space, db=db).search()
        record = outcome.record
        info["searched"] = True
        info["measured"] = len(outcome.evaluations)
    if record is None:
        info["reason"] = "db-miss"
        return request, info
    tuned = record.config.apply(request)
    info.update(
        applied=True,
        config=record.config.as_dict(),
        score_ms=record.score_ms,
        baseline_ms=record.baseline_ms,
        speedup=record.speedup,
        key=db.key_for(request, space),
    )
    return tuned, info
