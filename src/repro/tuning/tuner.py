"""The tuner: budgeted search over a pruned launch space.

Strategy selection follows the related auto-tuning systems (DaCe's
auto-optimizer, MIRGE's per-target transformation search): exhaustive
enumeration when the pruned space fits the measurement budget, seeded
random sampling plus a local hill-climb over the knob neighbourhood when it
does not.  Either way the candidate list is first cut down by the
occupancy/roofline pruner (:func:`repro.tuning.model.prune_space`), so
obviously infeasible or bandwidth-hopeless launches are never measured.

"Measuring" a candidate means running the workload's analytic bench path
(verification off, a single repeat) and reading its ``kernel_time_ms``
metric — exactly the quantity ``python -m repro bench`` reports — plus a
functional capture/replay probe (:mod:`repro.tuning.probe`) where the
workload provides one.  Results are deterministic: the analytic model is
pure and the random strategy is seeded.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import ConfigurationError, ReproError
from ..harness.runner import MeasurementProtocol
from .db import TuningDB, TuningRecord, default_tuning_db
from .model import (
    DEFAULT_KEEP_RATIO,
    CandidateEstimate,
    PruneReport,
    estimate_candidate,
    prune_space,
)
from .probe import DEFAULT_PROBE_TIMEOUT_MS, ProbeResult, run_probe
from .space import TuningConfig, TuningSpace

__all__ = ["Evaluation", "TuningOutcome", "Tuner", "STRATEGIES",
           "DEFAULT_BUDGET"]

#: search strategies: "auto" picks exhaustive when the pruned space fits the
#: budget and random+hill-climb otherwise
STRATEGIES = ("auto", "exhaustive", "random")

#: measured configurations (baseline included) when no budget is given
DEFAULT_BUDGET = 16


@dataclass
class Evaluation:
    """One measured candidate."""

    config: TuningConfig
    #: the pruner's occupancy/roofline estimate, ms
    modelled_ms: float
    #: the bench path's kernel cost, ms (inf when the run failed)
    measured_ms: float
    #: how the candidate entered the search
    source: str
    probe: Optional[ProbeResult] = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return math.isfinite(self.measured_ms) and \
            (self.probe is None or self.probe.ok)

    def as_dict(self) -> Dict[str, object]:
        out = {
            "config": self.config.as_dict(),
            "label": self.config.label(),
            "modelled_ms": None if math.isinf(self.modelled_ms)
            else self.modelled_ms,
            "measured_ms": None if math.isinf(self.measured_ms)
            else self.measured_ms,
            "source": self.source,
            "ok": self.ok,
        }
        if self.probe is not None:
            out["probe"] = self.probe.as_dict()
        if self.error:
            out["error"] = self.error
        return out


@dataclass
class TuningOutcome:
    """Everything one :meth:`Tuner.search` produced."""

    workload: str
    strategy: str
    budget: int
    prune: PruneReport
    evaluations: List[Evaluation] = field(default_factory=list)
    best: Optional[Evaluation] = None
    baseline: Optional[Evaluation] = None
    record: Optional[TuningRecord] = None
    db_key: str = ""

    @property
    def speedup(self) -> float:
        if self.best is None or self.baseline is None \
                or self.best.measured_ms <= 0:
            return 1.0
        return self.baseline.measured_ms / self.best.measured_ms

    def ranking(self) -> List[Evaluation]:
        """Measured candidates, best (lowest measured cost) first."""
        return sorted(self.evaluations, key=lambda e: e.measured_ms)

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "budget": self.budget,
            "prune": self.prune.as_dict(),
            "evaluations": [e.as_dict() for e in self.ranking()],
            "best": self.best.as_dict() if self.best else None,
            "baseline": self.baseline.as_dict() if self.baseline else None,
            "speedup": self.speedup,
            "db_key": self.db_key,
        }


class Tuner:
    """Search a workload's tuning space for one request's best configuration."""

    def __init__(self, workload, request, *,
                 space: Optional[TuningSpace] = None,
                 db: Optional[TuningDB] = None,
                 budget: int = DEFAULT_BUDGET,
                 strategy: str = "auto",
                 seed: int = 2025,
                 keep_ratio: float = DEFAULT_KEEP_RATIO,
                 prune: bool = True,
                 probe: bool = True,
                 probe_repeats: int = 2,
                 probe_timeout_ms: Optional[float] = DEFAULT_PROBE_TIMEOUT_MS):
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown tuning strategy {strategy!r}; expected one of "
                f"{STRATEGIES}"
            )
        if budget < 2:
            raise ConfigurationError(
                f"tuning budget must be >= 2 (baseline + one candidate), "
                f"got {budget}"
            )
        self.workload = workload
        self.request = request
        self.space = space if space is not None \
            else workload.tuning_space(request)
        if self.space is None:
            raise ConfigurationError(
                f"workload {workload.name!r} declares no tuning space"
            )
        self.db = db if db is not None else default_tuning_db()
        self.budget = int(budget)
        self.strategy = strategy
        self.seed = int(seed)
        self.keep_ratio = keep_ratio
        self.prune = prune
        self.probe = probe
        self.probe_repeats = int(probe_repeats)
        #: wall-clock budget per candidate probe; a candidate that hangs the
        #: functional simulator is disqualified instead of stalling the search
        self.probe_timeout_ms = probe_timeout_ms

    # ------------------------------------------------------------ measurement
    def _measure(self, config: TuningConfig,
                 estimate: Optional[CandidateEstimate],
                 source: str) -> Evaluation:
        """Run the bench path (and the capture/replay probe) for one config."""
        tuned = config.apply(self.request).replace(
            tune="off", verify=False,
            protocol=MeasurementProtocol(warmup=0, repeats=1))
        modelled = estimate.modelled_ms if estimate is not None \
            else float("inf")
        try:
            result = self.workload.run(tuned)
            measured = float(result.metrics["kernel_time_ms"])
        except ReproError as exc:
            return Evaluation(config=config, modelled_ms=modelled,
                              measured_ms=float("inf"), source=source,
                              error=str(exc))
        probe = None
        if self.probe:
            probe = run_probe(self.workload, tuned,
                              repeats=self.probe_repeats,
                              timeout_ms=self.probe_timeout_ms)
            if probe is not None and not probe.ok:
                measured = float("inf")
        return Evaluation(config=config, modelled_ms=modelled,
                          measured_ms=measured, source=source, probe=probe)

    # ----------------------------------------------------------------- search
    def search(self, *, persist: bool = True) -> TuningOutcome:
        """Prune, measure within budget, pick the winner, persist it."""
        request = self.request
        report = prune_space(self.workload, request, self.space,
                             keep_ratio=self.keep_ratio, enabled=self.prune)
        by_config = {e.config: e for e in report.estimates}
        kept = [e.config for e in report.kept]  # best-estimate-first

        strategy = self.strategy
        if strategy == "auto":
            strategy = "exhaustive" if len(kept) < self.budget else "random"
        outcome = TuningOutcome(workload=self.workload.name,
                                strategy=strategy, budget=self.budget,
                                prune=report)
        seen = set()

        def measure(config: TuningConfig, source: str) -> Optional[Evaluation]:
            if config in seen or len(outcome.evaluations) >= self.budget:
                return None
            seen.add(config)
            estimate = by_config.get(config)
            if estimate is None:
                try:
                    model, launch = self.workload.tuning_model(
                        config.apply(request))
                    estimate = estimate_candidate(request.gpu, model, launch,
                                                  config)
                except ReproError:
                    estimate = None
            evaluation = self._measure(config, estimate, source)
            outcome.evaluations.append(evaluation)
            return evaluation

        # The untuned point is always measured: it anchors the speedup and
        # guarantees the winner is never worse than not tuning at all.
        baseline_config = self.space.baseline(request)
        outcome.baseline = measure(baseline_config, "baseline")

        if strategy == "exhaustive":
            for config in kept:
                measure(config, "grid")
        else:
            rng = random.Random(self.seed)
            pool = [c for c in kept if c not in seen]
            rng.shuffle(pool)
            sample = max((self.budget - len(outcome.evaluations)) // 2, 1)
            for config in pool[:sample]:
                measure(config, "random")
            self._hill_climb(outcome, kept, measure)

        ok = [e for e in outcome.evaluations if e.ok]
        outcome.best = min(ok, key=lambda e: (e.measured_ms, e.modelled_ms)) \
            if ok else None
        if outcome.best is not None and outcome.baseline is not None:
            outcome.record = TuningRecord(
                workload=self.workload.name,
                gpu=request.gpu, backend=request.backend,
                precision=request.precision,
                key_params={k: v for k, v in sorted(request.params.items())
                            if k not in set(self.space.param_names)},
                config=outcome.best.config,
                score_ms=outcome.best.measured_ms,
                baseline_ms=outcome.baseline.measured_ms,
                modelled_ms=outcome.best.modelled_ms,
                strategy=strategy, budget=self.budget,
                space_size=report.space_size, pruned=len(report.pruned),
                measured=len(outcome.evaluations),
            )
            if persist:
                outcome.db_key = self.db.put(request, outcome.record,
                                             self.space)
            else:
                outcome.db_key = self.db.key_for(request, self.space)
        return outcome

    def _hill_climb(self, outcome: TuningOutcome, kept: List[TuningConfig],
                    measure) -> None:
        """Greedy one-knob moves from the best measured point."""
        keepable = set(kept)
        estimates = {e.config: e.modelled_ms for e in outcome.prune.estimates}
        while len(outcome.evaluations) < self.budget:
            ok = [e for e in outcome.evaluations if e.ok]
            if not ok:
                return
            current = min(ok, key=lambda e: e.measured_ms)
            tried = {e.config for e in outcome.evaluations}
            moves = [c for c in self.space.neighbors(current.config)
                     if c in keepable and c not in tried]
            if not moves:
                return
            # try the model's favourite move first
            moves.sort(key=lambda c: estimates.get(c, float("inf")))
            improved = False
            for config in moves:
                if len(outcome.evaluations) >= self.budget:
                    return
                evaluation = measure(config, "climb")
                if evaluation is not None and evaluation.ok and \
                        evaluation.measured_ms < current.measured_ms:
                    improved = True
                    break
            if not improved:
                return
