"""The tuning database: remembered winners per (workload, gpu, backend, ...).

Mirrors the request-level result cache (:mod:`repro.workloads.cache`): an
in-memory LRU in front of an optional on-disk JSON store (default location
``.repro_tune/``), thread-safe, with ``info()``/``clear()`` statistics and a
module-level default instance.

Keys
----
A tuning record answers "what is the best launch configuration for this
*problem*", so the key is the :class:`~repro.workloads.base.RunRequest`
minus everything the tuner itself may change and everything irrelevant to
the optimum: the tuned param/field knobs, the measurement protocol, the
verification switches and the ``tune`` mode are all excluded.  What remains
— workload, GPU, backend, precision, the non-tuned params, and any
cost-shaping request field the space does *not* tune (``fast_math``, for a
space without that knob) — identifies the problem.  The schema tag and package version are folded into the digest
(and checked on read), so a schema bump or release invalidates stale
records instead of serving a winner the current model would not pick.

Disk entries are pruned oldest-first past a byte budget
(:func:`repro.core.diskstore.prune_dir_to_budget`), so ``.repro_tune/``
cannot grow without bound across sweeps.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..obs import metrics as _obs_metrics
from .space import TuningConfig, TuningSpace

__all__ = ["TuningRecord", "TuningDB", "DEFAULT_TUNE_DIR",
           "DEFAULT_TUNE_DISK_BUDGET", "configure_tuning_db",
           "default_tuning_db", "tuning_db_info", "clear_tuning_db"]

#: default on-disk store location (created lazily on the first write)
DEFAULT_TUNE_DIR = ".repro_tune"

#: byte budget for the on-disk store; oldest records beyond it are evicted
DEFAULT_TUNE_DISK_BUDGET = 8 * 1024 * 1024

#: schema tag stored with every record; bump to invalidate old stores
_TUNE_SCHEMA = "repro.tuning-record/v1"


@dataclass
class TuningRecord:
    """One persisted tuning winner."""

    workload: str
    gpu: str
    backend: str
    precision: str
    #: the request params the record is keyed by (tuned knobs excluded)
    key_params: Dict[str, object]
    #: the winning configuration
    config: TuningConfig
    #: measured cost of the winner, in ms (lower is better)
    score_ms: float
    #: measured cost of the request's untuned configuration, in ms
    baseline_ms: float
    #: the pruner's occupancy/roofline estimate for the winner, in ms
    modelled_ms: float
    strategy: str = ""
    budget: int = 0
    space_size: int = 0
    pruned: int = 0
    measured: int = 0

    @property
    def speedup(self) -> float:
        """Baseline-over-winner cost ratio (>1: tuning helped)."""
        if self.score_ms <= 0:
            return 1.0
        return self.baseline_ms / self.score_ms

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": _TUNE_SCHEMA,
            "workload": self.workload,
            "gpu": self.gpu,
            "backend": self.backend,
            "precision": self.precision,
            "key_params": dict(self.key_params),
            "config": self.config.as_dict(),
            "score_ms": self.score_ms,
            "baseline_ms": self.baseline_ms,
            "modelled_ms": self.modelled_ms,
            "strategy": self.strategy,
            "budget": self.budget,
            "space_size": self.space_size,
            "pruned": self.pruned,
            "measured": self.measured,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> Optional["TuningRecord"]:
        if payload.get("schema") != _TUNE_SCHEMA:
            return None
        cfg = payload.get("config", {})
        return cls(
            workload=payload["workload"],
            gpu=payload["gpu"],
            backend=payload["backend"],
            precision=payload["precision"],
            key_params=dict(payload.get("key_params", {})),
            config=TuningConfig.make(cfg.get("params"), cfg.get("fields")),
            score_ms=float(payload["score_ms"]),
            baseline_ms=float(payload["baseline_ms"]),
            modelled_ms=float(payload.get("modelled_ms", 0.0)),
            strategy=payload.get("strategy", ""),
            budget=int(payload.get("budget", 0)),
            space_size=int(payload.get("space_size", 0)),
            pruned=int(payload.get("pruned", 0)),
            measured=int(payload.get("measured", 0)),
        )


#: request fields that shape the measured kernel cost and therefore belong
#: in the problem key — unless the space tunes them, in which case they are
#: the record's *output* rather than part of its identity.  (``executor``,
#: ``streams``, the protocol and the verification switches never move the
#: analytic kernel cost, so they stay excluded either way.)
_COST_FIELDS = ("fast_math",)


def tuning_key(request, tuned_params: Sequence[str] = (),
               tuned_fields: Sequence[str] = ()) -> str:
    """Stable digest identifying the *problem* a tuning record answers."""
    from .. import __version__

    params = {k: v for k, v in sorted(request.params.items())
              if k not in set(tuned_params)}
    fields = {k: getattr(request, k) for k in _COST_FIELDS
              if k not in set(tuned_fields)}
    payload = json.dumps({
        "workload": request.workload,
        "gpu": request.gpu,
        "backend": request.backend,
        "precision": request.precision,
        "params": params,
        "fields": fields,
    }, sort_keys=True, default=str)
    keyed = f"{_TUNE_SCHEMA}|{__version__}|{payload}"
    return hashlib.sha256(keyed.encode("utf-8")).hexdigest()[:24]


class TuningDB:
    """Keyed store of :class:`TuningRecord`, memory LRU + optional disk."""

    def __init__(self, maxsize: int = 128,
                 disk_dir: Optional[str] = None,
                 max_disk_bytes: int = DEFAULT_TUNE_DISK_BUDGET):
        self.maxsize = int(maxsize)
        self.disk_dir = disk_dir
        self.max_disk_bytes = max_disk_bytes
        self._entries: "OrderedDict[str, TuningRecord]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0

    # ------------------------------------------------------------------ keys
    @staticmethod
    def key_for(request, space: Optional[TuningSpace] = None) -> str:
        if space is None:
            return tuning_key(request)
        return tuning_key(request, space.param_names, space.field_names)

    def _disk_path(self, workload: str, key: str) -> str:
        return os.path.join(self.disk_dir, "records",
                            f"{workload}-{key}.json")

    # ------------------------------------------------------------- get / put
    def get(self, request, space: Optional[TuningSpace] = None,
            ) -> Optional[TuningRecord]:
        """Best-known record for *request*'s problem, or None."""
        key = self.key_for(request, space)
        with self._lock:
            record = self._entries.get(key)
            if record is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                _obs_metrics.inc("tuning_db_hits_total")
                return record
        if self.disk_dir is not None:
            record = self._disk_get(request.workload, key)
            if record is not None:
                with self._lock:
                    self._hits += 1
                    self._disk_hits += 1
                    self._remember(key, record)
                _obs_metrics.inc("tuning_db_hits_total")
                _obs_metrics.inc("tuning_db_disk_hits_total")
                return record
        with self._lock:
            self._misses += 1
        _obs_metrics.inc("tuning_db_misses_total")
        return None

    def put(self, request, record: TuningRecord,
            space: Optional[TuningSpace] = None) -> str:
        """Store *record* for *request*'s problem; returns the key."""
        key = self.key_for(request, space)
        with self._lock:
            self._remember(key, record)
        if self.disk_dir is not None:
            self._disk_put(request.workload, key, record)
        return key

    def _remember(self, key: str, record: TuningRecord) -> None:
        self._entries[key] = record
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    # ----------------------------------------------------------------- disk
    def _disk_get(self, workload: str, key: str) -> Optional[TuningRecord]:
        from ..core.diskstore import read_json_entry

        payload = read_json_entry(self._disk_path(workload, key))
        if payload is None:
            return None
        return TuningRecord.from_dict(payload)

    def _disk_put(self, workload: str, key: str,
                  record: TuningRecord) -> None:
        from ..core.diskstore import write_json_entry

        write_json_entry(self._disk_path(workload, key), record.as_dict(),
                         self.max_disk_bytes)

    # ------------------------------------------------------------ statistics
    def info(self) -> Dict[str, object]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "disk_hits": self._disk_hits,
                "disk_enabled": self.disk_dir is not None,
                "max_disk_bytes": self.max_disk_bytes,
            }

    def clear(self) -> None:
        """Drop in-memory records and reset counters (disk left in place)."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0


# ---------------------------------------------------------------------------
# Module-level default DB (mirrors the result-cache module API)
# ---------------------------------------------------------------------------

_default_db = TuningDB(disk_dir=DEFAULT_TUNE_DIR)
_default_lock = threading.Lock()


def default_tuning_db() -> TuningDB:
    """The process-wide default tuning database."""
    return _default_db


def configure_tuning_db(*, maxsize: Optional[int] = None,
                        disk_dir: Optional[str] = None,
                        disk: Optional[bool] = None,
                        max_disk_bytes: Optional[int] = None) -> TuningDB:
    """Replace the default DB's configuration (entries are dropped).

    ``disk=False`` makes the default DB purely in-memory (used by tests and
    the tuned-portability report, which must not pollute ``.repro_tune/``).
    """
    global _default_db
    with _default_lock:
        current = _default_db
        new_maxsize = maxsize if maxsize is not None else current.maxsize
        new_budget = max_disk_bytes if max_disk_bytes is not None \
            else current.max_disk_bytes
        if disk is None:
            new_dir = disk_dir if disk_dir is not None else current.disk_dir
        elif disk:
            new_dir = disk_dir or current.disk_dir or DEFAULT_TUNE_DIR
        else:
            new_dir = None
        _default_db = TuningDB(maxsize=new_maxsize, disk_dir=new_dir,
                               max_disk_bytes=new_budget)
        return _default_db


def tuning_db_info() -> Dict[str, object]:
    """Statistics of the default tuning database."""
    return _default_db.info()


def clear_tuning_db() -> None:
    """Drop the default DB's in-memory records and counters."""
    _default_db.clear()
