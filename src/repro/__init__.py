"""repro: reproduction of the SC Workshops '25 Mojo GPU science-kernels paper.

The package provides a Mojo-style portable GPU programming model executed on a
simulated device, backends standing in for the Mojo/CUDA/HIP toolchains, the
four science workloads of the paper (seven-point stencil, BabelStream,
miniBUDE, Hartree–Fock), a profiling substrate, and a benchmark harness that
regenerates every table and figure of the paper's evaluation.
"""

from . import backends, core, gpu
from .core import (
    Atomic,
    DeviceContext,
    DeviceGraph,
    Dim3,
    DType,
    Event,
    Kernel,
    KernelModel,
    LaunchConfig,
    Layout,
    LayoutTensor,
    Stream,
    barrier,
    block_dim,
    block_idx,
    ceildiv,
    grid_dim,
    kernel,
    thread_idx,
)
from .backends import get_backend, list_backends, vendor_baseline_for
from .gpu import GPUSpec, Roofline, get_gpu, list_gpus

__version__ = "1.2.0"

from . import workloads
from .workloads import (
    RunRequest,
    Workload,
    WorkloadResult,
    get_workload,
    list_workloads,
    register_workload,
    run_workload,
)

__all__ = [
    "backends", "core", "gpu", "workloads",
    "Atomic", "DeviceContext", "DeviceGraph", "Dim3", "DType", "Event",
    "Kernel", "KernelModel",
    "LaunchConfig", "Layout", "LayoutTensor", "Stream", "barrier", "block_dim",
    "block_idx", "ceildiv", "grid_dim", "kernel", "thread_idx",
    "get_backend", "list_backends", "vendor_baseline_for",
    "GPUSpec", "Roofline", "get_gpu", "list_gpus",
    "RunRequest", "Workload", "WorkloadResult", "get_workload",
    "list_workloads", "register_workload", "run_workload",
    "__version__",
]
