"""The HIP vendor-baseline backend model (AMD GPUs only).

The HIP baselines are AMD's lab-notes seven-point stencil, the HIP
BabelStream implementation, the HIP miniBUDE port and the HIP Hartree–Fock
port.  As with CUDA this profile is the reference the portable backend is
compared against on AMD hardware, so it keeps default lowering behaviour:

* ``fast_math_available=True`` — ``-ffast-math`` gives the upper curve of
  Figure 7.
* ``atomic_mode="native"`` with unit throughput — Table 4 shows HIP handling
  the Hartree–Fock atomics well on MI300A (178 ms at 256 atoms).
* The stencil grid recommendation (512x1x1 blocks at L=512) carried over from
  the MI250X lab notes also applies on MI300A, which the paper confirms.
"""

from __future__ import annotations

from ..core.compiler import CompilerProfile
from ..gpu.specs import get_gpu
from .base import Backend

__all__ = ["HIPBackend"]


class HIPBackend(Backend):
    """AMD vendor baseline."""

    name = "hip"
    display_name = "HIP"
    supported_vendors = ("amd",)
    fast_math_available = True
    portable = False

    _PROFILE = CompilerProfile(
        name="hip",
        fast_math_available=True,
        constant_promotion=False,
        constant_loads_per_scalar=2.0,
        promoted_loads_per_scalar=1.0,
        register_scale=1.05,
        register_bias=3,
        int_op_scale=1.05,
        l1_reuse_efficiency=1.0,
        stride1_efficiency=1.0,
        shared_reduction_efficiency=1.0,
        special_function_efficiency=1.0,
        fast_math_special_efficiency=5.0,
        atomic_mode="native",
        atomic_throughput_scale=1.0,
        spill_threshold_values=200,
        spill_penalty=4.0,
    )

    def compiler_profile(self, gpu) -> CompilerProfile:
        self.require_support(gpu)
        return self._PROFILE

    # ----------------------------------------------------------- heuristics
    def default_block_size(self, gpu, *, kernel_kind: str = "generic") -> int:
        if kernel_kind == "stencil":
            return 512
        return 1024

    def dot_num_blocks(self, gpu, n: int, block_size: int) -> int:
        # The HIP BabelStream baseline also derives the reduction grid from
        # the compute-unit count.
        spec = get_gpu(gpu)
        return spec.sm_count * 4
