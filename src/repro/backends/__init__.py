"""Programming-model backends: portable Mojo and the CUDA/HIP vendor baselines."""

from .base import Backend, BackendRun
from .cuda import CUDABackend
from .hip import HIPBackend
from .mojo import MojoBackend
from .registry import get_backend, list_backends, register_backend, vendor_baseline_for

__all__ = [
    "Backend", "BackendRun",
    "MojoBackend", "CUDABackend", "HIPBackend",
    "get_backend", "list_backends", "register_backend", "vendor_baseline_for",
]
