"""The CUDA vendor-baseline backend model (NVIDIA GPUs only).

The CUDA baselines in the paper come from AMD's lab-notes stencil translated
to CUDA, the CUDA BabelStream implementation, the CUDA miniBUDE port and a
CUDA Hartree–Fock port.  The profile below is the reference point the Mojo
profile is measured against, so most values are the defaults; where the paper
highlights a CUDA-specific behaviour it is noted:

* ``constant_promotion=False`` with ``constant_loads_per_scalar=2.0`` — Figure
  5 shows CUDA issuing more constant loads than Mojo for Triad.
* ``register_scale=1.0`` — Table 2's 21 registers/thread for the stencil.
* ``fast_math_available=True`` — the vendor toolchain exposes ``-use_fast_math``,
  giving the upper curve of Figure 6.
* vendor-tuned Dot reduction (``shared_reduction_efficiency=1.0`` plus the
  multiprocessor-count grid heuristic in :meth:`dot_num_blocks`).
"""

from __future__ import annotations

from ..core.compiler import CompilerProfile
from ..gpu.specs import get_gpu
from .base import Backend

__all__ = ["CUDABackend"]


class CUDABackend(Backend):
    """NVIDIA vendor baseline."""

    name = "cuda"
    display_name = "CUDA"
    supported_vendors = ("nvidia",)
    fast_math_available = True
    portable = False

    _PROFILE = CompilerProfile(
        name="cuda",
        fast_math_available=True,
        constant_promotion=False,
        constant_loads_per_scalar=2.0,
        promoted_loads_per_scalar=1.0,
        register_scale=1.0,
        register_bias=3,
        int_op_scale=1.0,
        l1_reuse_efficiency=1.0,
        stride1_efficiency=1.0,
        shared_reduction_efficiency=1.0,
        special_function_efficiency=1.0,
        fast_math_special_efficiency=5.0,
        atomic_mode="native",
        atomic_throughput_scale=1.0,
        spill_threshold_values=200,
        spill_penalty=4.0,
    )

    def compiler_profile(self, gpu) -> CompilerProfile:
        self.require_support(gpu)
        return self._PROFILE

    # ----------------------------------------------------------- heuristics
    def default_block_size(self, gpu, *, kernel_kind: str = "generic") -> int:
        if kernel_kind == "stencil":
            return 512
        return 1024

    def dot_num_blocks(self, gpu, n: int, block_size: int) -> int:
        # The CUDA BabelStream baseline sizes the reduction grid from the
        # device's multiprocessor count (blocks = 4 * SMs).
        spec = get_gpu(gpu)
        return spec.sm_count * 4
