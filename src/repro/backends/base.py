"""Backend abstraction: how a programming model lowers and runs kernels.

A *backend* is the pairing the paper compares: the portable Mojo programming
model versus the vendor-specific CUDA and HIP baselines.  Backends share the
functional executor (the numerics are identical by construction — that is the
point of a port) and differ in how they *lower* kernels: register allocation,
constant-memory promotion, fast-math availability, atomic lowering and
block-size heuristics.  Those differences are expressed as a
:class:`~repro.core.compiler.CompilerProfile` per (backend, GPU vendor) pair
and documented field-by-field in the concrete backend modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..core.compiler import CompiledKernel, CompilerProfile, compile_kernel
from ..core.errors import UnsupportedBackendError
from ..core.kernel import KernelModel, LaunchConfig
from ..gpu.specs import GPUSpec, get_gpu
from ..gpu.timing import KernelTimingModel, TimingBreakdown

__all__ = ["Backend", "BackendRun"]


@dataclass
class BackendRun:
    """A compiled kernel together with its predicted timing on one GPU."""

    backend_name: str
    gpu: GPUSpec
    compiled: CompiledKernel
    timing: TimingBreakdown
    launch: LaunchConfig
    fast_math: bool = False

    @property
    def kernel_time_ms(self) -> float:
        return self.timing.kernel_time_ms

    @property
    def achieved_bandwidth_gbs(self) -> float:
        return self.timing.achieved_bandwidth_gbs

    @property
    def achieved_gflops(self) -> float:
        return self.timing.achieved_gflops


class Backend:
    """Base class for programming-model backends."""

    #: registry name, e.g. ``"mojo"``
    name: str = "backend"
    #: display name used in reports and figures
    display_name: str = "Backend"
    #: vendors this backend can target: ("nvidia",), ("amd",) or both
    supported_vendors: Tuple[str, ...] = ("nvidia", "amd")
    #: whether the toolchain offers fast-math at all
    fast_math_available: bool = True
    #: True for the portable programming model (same source on all vendors)
    portable: bool = False

    # ------------------------------------------------------------------ API
    def supports(self, gpu) -> bool:
        """True when this backend can target *gpu*."""
        return get_gpu(gpu).vendor in self.supported_vendors

    def require_support(self, gpu) -> GPUSpec:
        spec = get_gpu(gpu)
        if spec.vendor not in self.supported_vendors:
            raise UnsupportedBackendError(
                f"backend {self.name!r} does not support {spec.full_name} "
                f"(vendor {spec.vendor!r}); supported vendors: "
                f"{self.supported_vendors}"
            )
        return spec

    def compiler_profile(self, gpu) -> CompilerProfile:
        """Return the lowering profile for this backend on *gpu*."""
        raise NotImplementedError

    def cached_profile(self, spec: GPUSpec) -> CompilerProfile:
        """Per-GPU memo of :meth:`compiler_profile`.

        Profiles are frozen value objects, so reusing one instance per GPU is
        safe and keeps the sweep hot path (compile → cache lookup) free of
        repeated profile construction.
        """
        cache = self.__dict__.setdefault("_profile_cache", {})
        profile = cache.get(spec.name)
        if profile is None:
            profile = self.compiler_profile(spec)
            cache[spec.name] = profile
        return profile

    def compile(self, model: KernelModel, gpu, *, launch: Optional[LaunchConfig] = None,
                fast_math: bool = False) -> CompiledKernel:
        """Compile a kernel model for *gpu* (memoised via the compile cache)."""
        spec = self.require_support(gpu)
        profile = self.cached_profile(spec)
        return compile_kernel(
            model, profile, fast_math=fast_math, launch=launch,
            backend_name=self.name,
        )

    def time(self, model: KernelModel, gpu, launch: LaunchConfig, *,
             fast_math: bool = False) -> BackendRun:
        """Compile *model* and predict its duration for *launch* on *gpu*."""
        spec = self.require_support(gpu)
        compiled = self.compile(model, spec, launch=launch, fast_math=fast_math)
        timing = KernelTimingModel(spec).predict(compiled, launch)
        return BackendRun(
            backend_name=self.name,
            gpu=spec,
            compiled=compiled,
            timing=timing,
            launch=launch,
            fast_math=compiled.fast_math,
        )

    # ------------------------------------------------------------ heuristics
    def default_block_size(self, gpu, *, kernel_kind: str = "generic") -> int:
        """Threads-per-block heuristic for 1-D kernels."""
        return 1024

    def dot_num_blocks(self, gpu, n: int, block_size: int) -> int:
        """Grid-size heuristic for the BabelStream Dot reduction.

        Vendor baselines size the grid from the multiprocessor count; the
        portable backend uses a fixed element-derived grid.  Overridden by the
        concrete backends.
        """
        spec = get_gpu(gpu)
        return spec.sm_count * 4

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Backend {self.name}>"
