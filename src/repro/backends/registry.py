"""Backend registry and vendor-baseline selection."""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.errors import ConfigurationError
from ..gpu.specs import get_gpu
from .base import Backend
from .cuda import CUDABackend
from .hip import HIPBackend
from .mojo import MojoBackend

__all__ = ["get_backend", "list_backends", "register_backend", "vendor_baseline_for"]

_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend, *aliases: str) -> Backend:
    """Register a backend instance under its name and optional aliases."""
    _REGISTRY[backend.name.lower()] = backend
    for alias in aliases:
        _REGISTRY[alias.lower()] = backend
    return backend


register_backend(MojoBackend(), "mojo🔥")
register_backend(CUDABackend(), "nvcc")
register_backend(HIPBackend(), "rocm")


def get_backend(name) -> Backend:
    """Look up a backend by name; passes Backend instances through."""
    if isinstance(name, Backend):
        return name
    try:
        return _REGISTRY[str(name).lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; known backends: {sorted(set(_REGISTRY))}"
        ) from None


def list_backends() -> Tuple[str, ...]:
    """Canonical names of registered backends."""
    return tuple(sorted({b.name for b in _REGISTRY.values()}))


def vendor_baseline_for(gpu) -> Backend:
    """The vendor-specific baseline backend for a GPU (CUDA or HIP)."""
    spec = get_gpu(gpu)
    return get_backend("cuda" if spec.is_nvidia else "hip")
