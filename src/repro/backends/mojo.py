"""The portable Mojo backend model.

Mojo compiles the *same* kernel source for NVIDIA and AMD GPUs through MLIR.
The paper's measurements show where that portable lowering differs from the
vendor toolchains; the per-vendor :class:`CompilerProfile` below encodes those
observations.  Provenance of every non-default value:

NVIDIA (H100) profile
---------------------
* ``register_scale=1.15`` / ``int_op_scale=1.30`` — Table 2 reports 24
  registers/thread for Mojo vs 21 for CUDA on the FP64 stencil (and 26 vs 20
  on the FP32 case), and Figure 5 shows extra ``IADD3`` instructions in the
  Triad inner loop.
* ``l1_reuse_efficiency=0.88`` — the stencil section measures Mojo at ~87% of
  CUDA bandwidth on H100, attributed to register/L1-level reuse.
* ``stride1_efficiency=1.01`` — BabelStream Copy/Mul/Add/Triad are *slightly
  faster* than CUDA (Table 5 efficiencies of 1.01-1.02), attributed to fewer
  constant loads (``constant_promotion=True``).
* ``shared_reduction_efficiency=0.78`` — the portable Dot kernel reaches 78%
  of the CUDA baseline (Table 5).
* ``fast_math_available=False`` — the paper repeatedly notes Mojo lacks a
  fast-math option; ``special_function_efficiency=1.4`` places Mojo between
  CUDA with and without fast-math for miniBUDE (Figure 6).
* ``atomic_throughput_scale=2.5`` — Hartree–Fock is ~2.5x faster than CUDA up
  to 256 atoms (Table 4).
* ``pathology_threshold_values`` / ``pathology_penalty`` — the a=1024,
  ngauss=6 case collapses (147 s vs CUDA's 2.7 s, Table 4); modelled as a
  codegen pathology triggered by the much larger working set of the ngauss=6
  kernel.

AMD (MI300A) profile
--------------------
* memory-bound efficiencies of 1.0 — "essentially on par with the AMD HIP
  implementation" for stencil and BabelStream.
* ``special_function_efficiency=0.25`` — Mojo underperforms both HIP variants
  for miniBUDE on MI300A (Figure 7, and the 0.38 efficiencies of Table 5),
  reflecting the missing fast-math lowering of the square-root-heavy inner
  loop on the just-added AMD target.
* ``atomic_mode="cas"`` with ``cas_expected_retries=140`` — Mojo largely
  underperforms HIP for Hartree–Fock on MI300A (Table 4 shows ~140x), which
  the paper attributes to an immature atomic path on the newly supported
  MI300 target.
"""

from __future__ import annotations

from ..core.compiler import CompilerProfile
from ..gpu.specs import get_gpu
from .base import Backend

__all__ = ["MojoBackend"]


class MojoBackend(Backend):
    """Portable MLIR-based backend (the paper's subject)."""

    name = "mojo"
    display_name = "Mojo"
    supported_vendors = ("nvidia", "amd")
    fast_math_available = False
    portable = True

    #: Mojo added MI300-series support in June 2025; older AMD parts are not
    #: targets.  Kept as data so tests can assert the constraint.
    MIN_AMD_GPU = "mi300a"

    _NVIDIA_PROFILE = CompilerProfile(
        name="mojo-nvidia",
        fast_math_available=False,
        constant_promotion=True,
        constant_loads_per_scalar=2.0,
        promoted_loads_per_scalar=0.5,
        register_scale=1.15,
        register_bias=3,
        int_op_scale=1.30,
        l1_reuse_efficiency=0.88,
        stride1_efficiency=1.01,
        shared_reduction_efficiency=0.78,
        special_function_efficiency=1.4,
        fast_math_special_efficiency=1.4,
        atomic_mode="native",
        atomic_throughput_scale=2.5,
        spill_threshold_values=168,
        spill_penalty=4.0,
        pathology_threshold_values=90,
        pathology_penalty=100.0,
    )

    _AMD_PROFILE = CompilerProfile(
        name="mojo-amd",
        fast_math_available=False,
        constant_promotion=True,
        constant_loads_per_scalar=2.0,
        promoted_loads_per_scalar=0.5,
        register_scale=1.10,
        register_bias=3,
        int_op_scale=1.20,
        l1_reuse_efficiency=1.0,
        stride1_efficiency=1.0,
        shared_reduction_efficiency=1.0,
        special_function_efficiency=0.25,
        fast_math_special_efficiency=0.25,
        atomic_mode="cas",
        cas_expected_retries=140.0,
        atomic_throughput_scale=1.0,
        spill_threshold_values=168,
        spill_penalty=4.0,
    )

    def compiler_profile(self, gpu) -> CompilerProfile:
        spec = get_gpu(gpu)
        return self._NVIDIA_PROFILE if spec.is_nvidia else self._AMD_PROFILE

    # ----------------------------------------------------------- heuristics
    def default_block_size(self, gpu, *, kernel_kind: str = "generic") -> int:
        # The paper's Mojo ports use a fixed 1024-thread block (TBSize) for
        # the 1-D kernels and 512 or 1024 for the stencil.
        if kernel_kind == "stencil":
            return 512
        return 1024

    def dot_num_blocks(self, gpu, n: int, block_size: int) -> int:
        # Portable "hybrid" heuristic: an element-derived grid (about eight
        # elements per thread) capped at a portable constant, rather than a
        # vendor multiprocessor query.  A generous block count keeps the tail
        # wave negligible on both vendors' SM counts.
        blocks = -(-n // (block_size * 8))
        return max(1, min(blocks, 4096))
