"""Symbolic interval/affine expressions for the access-region analysis.

The region analysis (:mod:`repro.analysis.regions`) abstracts a kernel's
index arithmetic into small symbolic expression trees over the launch
geometry (``thread_idx.x`` … ``grid_dim.z``) and the kernel's scalar
parameters.  An expression stays *symbolic* until a concrete launch and
argument binding exist, at which point :meth:`SymExpr.interval` evaluates
it with standard interval arithmetic — the same two-phase structure DaCe
uses for its symbolic memlet ranges.

Design notes
------------
* Expressions are immutable trees built from :class:`Const`, :class:`Var`,
  the arithmetic nodes (:class:`Add` / :class:`Sub` / :class:`Mul` /
  :class:`FloorDiv` / :class:`Neg`), :class:`Clamp` (a guard-derived
  half-open bound restriction) and :class:`Join` (the hull of two values —
  ``lane_where`` selects).
* :class:`Interval` is a closed interval over the extended reals; the
  usual over-approximating arithmetic applies, so every derived region is
  a sound superset of the accessed index set.
* Equality is structural (:meth:`SymExpr.key`), which the fusion
  cover-set check and the memoisation keys rely on.

Evaluation environments map variable names (``"thread_idx.x"``, scalar
parameter names …) to :class:`Interval`; an unbound variable makes the
evaluation return ``None`` — the caller treats the access as unanalyzable
(whole-buffer ⊤) rather than guessing.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "Interval",
    "SymExpr",
    "Const",
    "Var",
    "Add",
    "Sub",
    "Mul",
    "FloorDiv",
    "Neg",
    "Clamp",
    "Join",
    "LANE_VARS",
    "UNIFORM_VARS",
    "launch_env",
]

_INF = float("inf")

#: lane-varying launch variables, per axis (value differs across lanes)
LANE_VARS = tuple(f"{base}.{axis}"
                  for base in ("thread_idx", "block_idx")
                  for axis in ("x", "y", "z"))
#: uniform launch variables (identical across every lane)
UNIFORM_VARS = tuple(f"{base}.{axis}"
                     for base in ("block_dim", "grid_dim")
                     for axis in ("x", "y", "z"))


class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals.

    ``lo > hi`` encodes the empty interval (e.g. a guard that excludes
    every lane).  All arithmetic is over-approximating.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float):
        self.lo = lo
        self.hi = hi

    # ------------------------------------------------------------- queries
    @property
    def empty(self) -> bool:
        return self.lo > self.hi

    @property
    def finite(self) -> bool:
        return not self.empty and self.lo > -_INF and self.hi < _INF

    @property
    def point(self) -> bool:
        return self.lo == self.hi

    def __eq__(self, other) -> bool:
        return isinstance(other, Interval) and \
            (self.lo, self.hi) == (other.lo, other.hi)

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interval({self.lo}, {self.hi})"

    # ---------------------------------------------------------- arithmetic
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        products = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                # 0 * inf is undefined on the extended reals; the affine
                # expressions we build only hit it with a 0 coefficient,
                # where the product term truly contributes nothing.
                products.append(0.0 if (a == 0 or b == 0) else a * b)
        return Interval(min(products), max(products))

    def floordiv(self, other: "Interval") -> Optional["Interval"]:
        """``self // other`` for a strictly positive (or negative) divisor."""
        if other.empty or self.empty:
            return Interval(1.0, 0.0)
        if other.lo > 0:
            candidates = [a // b for a in (self.lo, self.hi)
                          for b in (other.lo, other.hi)
                          if abs(a) != _INF] or None
            if candidates is None:
                return Interval(self.lo, self.hi)
            return Interval(min(candidates), max(candidates))
        if other.hi < 0:
            neg = self.floordiv(-other)
            return None if neg is None else -neg
        return None                     # divisor interval spans zero

    # --------------------------------------------------------- set algebra
    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def contains(self, other: "Interval") -> bool:
        return other.empty or (self.lo <= other.lo and other.hi <= self.hi)


_Env = Mapping[str, Interval]


class SymExpr:
    """Base class of the symbolic expression nodes."""

    __slots__ = ()

    def interval(self, env: _Env) -> Optional[Interval]:
        """Over-approximating interval of the expression under *env*.

        ``None`` when the expression mentions an unbound variable or an
        operation interval arithmetic cannot bound (e.g. division by an
        interval spanning zero) — the caller must treat the access as ⊤.
        """
        raise NotImplementedError

    def key(self) -> Tuple:
        """Structural identity (used for equality and memoisation)."""
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        return isinstance(other, SymExpr) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}{self.key()[1:]}"


class Const(SymExpr):
    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def interval(self, env: _Env) -> Optional[Interval]:
        return Interval(self.value, self.value)

    def key(self) -> Tuple:
        return ("const", self.value)


class Var(SymExpr):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def interval(self, env: _Env) -> Optional[Interval]:
        return env.get(self.name)

    def key(self) -> Tuple:
        return ("var", self.name)


class _Binary(SymExpr):
    __slots__ = ("left", "right")
    _tag = ""

    def __init__(self, left: SymExpr, right: SymExpr):
        self.left = left
        self.right = right

    def _sides(self, env: _Env):
        a = self.left.interval(env)
        b = self.right.interval(env)
        return (None, None) if a is None or b is None else (a, b)

    def key(self) -> Tuple:
        return (self._tag, self.left.key(), self.right.key())


class Add(_Binary):
    __slots__ = ()
    _tag = "add"

    def interval(self, env: _Env) -> Optional[Interval]:
        a, b = self._sides(env)
        return None if a is None else a + b


class Sub(_Binary):
    __slots__ = ()
    _tag = "sub"

    def interval(self, env: _Env) -> Optional[Interval]:
        a, b = self._sides(env)
        return None if a is None else a - b


class Mul(_Binary):
    __slots__ = ()
    _tag = "mul"

    def interval(self, env: _Env) -> Optional[Interval]:
        a, b = self._sides(env)
        return None if a is None else a * b


class FloorDiv(_Binary):
    __slots__ = ()
    _tag = "floordiv"

    def interval(self, env: _Env) -> Optional[Interval]:
        a, b = self._sides(env)
        return None if a is None else a.floordiv(b)


class Neg(SymExpr):
    __slots__ = ("operand",)

    def __init__(self, operand: SymExpr):
        self.operand = operand

    def interval(self, env: _Env) -> Optional[Interval]:
        inner = self.operand.interval(env)
        return None if inner is None else -inner

    def key(self) -> Tuple:
        return ("neg", self.operand.key())


class Clamp(SymExpr):
    """A value restricted by guard bounds: ``lo <= expr < hi``.

    Either bound may be absent.  ``hi`` is *exclusive*, matching the
    comparison guards (``i < n``) the kernels write; the interval
    evaluation converts it to the closed form.
    """

    __slots__ = ("operand", "lo", "hi")

    def __init__(self, operand: SymExpr, lo: Optional[SymExpr],
                 hi: Optional[SymExpr]):
        self.operand = operand
        self.lo = lo
        self.hi = hi

    def interval(self, env: _Env) -> Optional[Interval]:
        inner = self.operand.interval(env)
        if inner is None:
            return None
        bound = Interval(-_INF, _INF)
        if self.lo is not None:
            lo_iv = self.lo.interval(env)
            if lo_iv is None:
                return None
            bound = Interval(lo_iv.lo, bound.hi)
        if self.hi is not None:
            hi_iv = self.hi.interval(env)
            if hi_iv is None:
                return None
            bound = Interval(bound.lo, hi_iv.hi - 1.0)
        return inner.intersect(bound)

    def key(self) -> Tuple:
        return ("clamp", self.operand.key(),
                None if self.lo is None else self.lo.key(),
                None if self.hi is None else self.hi.key())


class Join(SymExpr):
    """Hull of two values — a ``lane_where`` select or merged branches."""

    __slots__ = ("left", "right")

    def __init__(self, left: SymExpr, right: SymExpr):
        self.left = left
        self.right = right

    def interval(self, env: _Env) -> Optional[Interval]:
        a = self.left.interval(env)
        b = self.right.interval(env)
        if a is None or b is None:
            return None
        return a.hull(b)

    def key(self) -> Tuple:
        return ("join", self.left.key(), self.right.key())


def launch_env(launch) -> Dict[str, Interval]:
    """Variable bindings for one concrete :class:`LaunchConfig`.

    Lane variables bind to their whole per-axis range, uniform geometry to
    point intervals — exactly the lane population a launch creates.
    """
    bd, gd = launch.block_dim, launch.grid_dim
    env: Dict[str, Interval] = {}
    for axis in ("x", "y", "z"):
        b = getattr(bd, axis)
        g = getattr(gd, axis)
        env[f"thread_idx.{axis}"] = Interval(0.0, float(b - 1))
        env[f"block_idx.{axis}"] = Interval(0.0, float(g - 1))
        env[f"block_dim.{axis}"] = Interval(float(b), float(b))
        env[f"grid_dim.{axis}"] = Interval(float(g), float(g))
    return env
