"""Symbolic access-region analysis for registered kernel bodies.

An abstract interpreter walks a kernel's AST once and computes, for every
buffer parameter, the set of *symbolic access regions* — per-dimension
:mod:`~repro.analysis.symexpr` expressions in the launch variables
(``thread_idx.x`` … ``grid_dim.z``) and the kernel's scalar parameters,
tightened by the guard masks the body establishes (comparison
conjunctions, ``compress_lanes`` clamps, ``lane_where`` selects — the same
patterns :mod:`repro.graphopt.lower` recognises when it vectorises
guards).  The symbolic summary is launch-independent and memoised on the
kernel function; *concretizing* it against an actual launch and argument
list yields integer index boxes per buffer, which feed four consumers:

* **racecheck** — provably disjoint cross-stream boxes suppress GR201;
  partial overlaps fire ``GR204`` with the exact conflicting interval.
* **verifier/lint** — boxes escaping the buffer extent under a shipped
  launch fire ``KV106``; boxes proven in-bounds discharge syntactic
  ``KV103`` warnings at the same source line.
* **graphopt fusion** — :func:`covers` grants cover-set fusion legality
  when a leader launch reproduces a follower's exact regions.
* **tuning** — :func:`launch_traffic` replaces the heuristic
  bytes-per-thread roofline inputs with exact per-buffer byte counts.

Soundness
---------
The interpreter *over-approximates*: every index a lane can actually
produce lies inside the reported region.  Anything it cannot model — loop
carried variables, calls into helpers, data-dependent indices — degrades
the access to ⊤ (the whole buffer), never to a smaller set.  Disjointness
conclusions drawn from regions are therefore sound.  The opposite
direction (an access *must* go out of bounds) additionally requires the
expression to be endpoint-exact — affine with single-occurrence variables
— and unguarded; only then does ``KV106`` fire as an error.
"""

from __future__ import annotations

import ast
import inspect
import math
import textwrap
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atomics import ATOMIC_FUNCTIONS
from .diagnostics import Diagnostic, Severity
from .symexpr import (
    Add,
    Clamp,
    Const,
    FloorDiv,
    Interval,
    Join,
    LANE_VARS,
    Mul,
    Neg,
    Sub,
    SymExpr,
    Var,
    launch_env,
)

__all__ = [
    "TensorSpec",
    "RegionAccess",
    "RegionSummary",
    "kernel_regions",
    "ArgRegion",
    "LaunchRegions",
    "concretize_launch",
    "bounds_diagnostics",
    "buffer_region",
    "BufferRegion",
    "region_conflict",
    "launch_traffic",
    "covers",
]

_MASKED_READS = ("masked_gather",)
_MASKED_WRITES = ("masked_store",)
_LANE_BASES = ("thread_idx", "block_idx")
_UNIFORM_BASES = ("block_dim", "grid_dim")
_REDUCTIONS = ("any_lane", "all_lanes")


@dataclass(frozen=True)
class TensorSpec:
    """Shape/dtype stand-in for a tensor argument at analysis time.

    ``Workload.region_probe`` returns these instead of allocating real
    device tensors — the region analysis only consumes shape and element
    size.
    """

    shape: Tuple[int, ...]
    dtype: object = "float64"

    @property
    def elem_bytes(self) -> int:
        sizeof = getattr(self.dtype, "sizeof", None)
        if sizeof is not None:
            return int(sizeof)
        from ..core.dtypes import dtype_from_any
        return int(dtype_from_any(self.dtype).sizeof)


@dataclass(frozen=True)
class RegionAccess:
    """One static access site of a buffer parameter."""

    param: str                       # parameter name
    index: int                       # positional parameter index
    kind: str                        # "r" or "w"
    line: int                        # source line (file coordinates)
    exprs: Optional[Tuple[SymExpr, ...]]   # per-dim index; None = ⊤
    guarded: bool                    # a lane guard/clamp dominates the site
    exact: bool                      # interval endpoints are achieved


@dataclass(frozen=True)
class RegionSummary:
    """Launch-independent symbolic access summary of one kernel body."""

    kernel: str
    source: str
    params: Tuple[str, ...]
    accesses: Tuple[RegionAccess, ...]
    analyzable: bool
    reasons: Tuple[str, ...] = ()


# --------------------------------------------------------------------------
# abstract values
# --------------------------------------------------------------------------

class _Opaque:
    """Value the interpreter cannot bound (⊤ element)."""

    __slots__ = ()


_OPAQUE = _Opaque()


class _Dim3Val:
    """Result of ``global_idx()`` — attribute access composes the axes."""

    __slots__ = ()

    def axis(self, name: str) -> SymExpr:
        return Add(Var(f"thread_idx.{name}"),
                   Mul(Var(f"block_idx.{name}"), Var(f"block_dim.{name}")))


class _MaskVal:
    """A parsed guard mask: per-name inclusive-lo / exclusive-hi bounds."""

    __slots__ = ("bounds",)

    def __init__(self, bounds: Dict[str, List[Tuple[Optional[SymExpr],
                                                    Optional[SymExpr]]]]):
        self.bounds = bounds

    def merged(self, other: "_MaskVal") -> "_MaskVal":
        out: Dict[str, List] = {k: list(v) for k, v in self.bounds.items()}
        for name, pairs in other.bounds.items():
            out.setdefault(name, []).extend(pairs)
        return _MaskVal(out)

    def key(self) -> Tuple:
        return tuple(sorted(
            (name, tuple((None if lo is None else lo.key(),
                          None if hi is None else hi.key())
                         for lo, hi in pairs))
            for name, pairs in self.bounds.items()))


def _expr_vars(expr: SymExpr, out: List[str]) -> None:
    if isinstance(expr, Var):
        out.append(expr.name)
    elif isinstance(expr, (Add, Sub, Mul, FloorDiv, Join)):
        _expr_vars(expr.left, out)
        _expr_vars(expr.right, out)
    elif isinstance(expr, Neg):
        _expr_vars(expr.operand, out)
    elif isinstance(expr, Clamp):
        _expr_vars(expr.operand, out)
        if expr.lo is not None:
            _expr_vars(expr.lo, out)
        if expr.hi is not None:
            _expr_vars(expr.hi, out)


def _has_lane_vars(expr: SymExpr) -> bool:
    names: List[str] = []
    _expr_vars(expr, names)
    return any(n in LANE_VARS for n in names)


def _has_approx_nodes(expr: SymExpr) -> bool:
    if isinstance(expr, (Clamp, Join)):
        return True
    if isinstance(expr, (Add, Sub, Mul, FloorDiv)):
        return _has_approx_nodes(expr.left) or _has_approx_nodes(expr.right)
    if isinstance(expr, Neg):
        return _has_approx_nodes(expr.operand)
    return False


def _endpoint_exact(expr: SymExpr) -> bool:
    """True when the interval endpoints are achieved by actual lanes.

    Holds for clamp/join-free expressions in which no variable occurs
    twice (monotone affine combinations of independently-ranged
    variables): the extreme of each variable is realised by some lane, so
    the interval endpoint is a real index.
    """
    if _has_approx_nodes(expr):
        return False
    names: List[str] = []
    _expr_vars(expr, names)
    lane = [n for n in names if n in LANE_VARS]
    return len(lane) == len(set(lane))


# --------------------------------------------------------------------------
# the abstract interpreter
# --------------------------------------------------------------------------

class _RegionInterp:
    def __init__(self, kernel: str, source: str, params: Sequence[str]):
        self.kernel = kernel
        self.source = source
        self.params = tuple(params)
        self.param_pos = {p: i for i, p in enumerate(self.params)}
        self.env: Dict[str, object] = {p: Var(p) for p in self.params}
        self.mask_stack: List[_MaskVal] = []
        self.guard_depth = 0          # unparsed lane-dependent guards
        self.tail_guarded = False     # an early lane return dominates
        self.accesses: List[RegionAccess] = []
        self.reasons: List[str] = []
        self._stopped = False

    # ------------------------------------------------------------ helpers
    def _reason(self, msg: str) -> None:
        if msg not in self.reasons:
            self.reasons.append(msg)

    def _param_of(self, node) -> Optional[str]:
        """Parameter name a subscript base refers to, if any."""
        if isinstance(node, ast.Name):
            if node.id in self.param_pos:
                return node.id
            val = self.env.get(node.id)
            if isinstance(val, Var) and val.name in self.param_pos:
                return val.name
        return None

    def _guarded_now(self) -> bool:
        return bool(self.mask_stack) or self.guard_depth > 0 \
            or self.tail_guarded

    def _active_bounds(self, name: str):
        pairs: List[Tuple[Optional[SymExpr], Optional[SymExpr]]] = []
        for mask in self.mask_stack:
            pairs.extend(mask.bounds.get(name, ()))
        return pairs

    def _lookup(self, name: str) -> object:
        val = self.env.get(name, _OPAQUE)
        if isinstance(val, SymExpr):
            for lo, hi in self._active_bounds(name):
                val = Clamp(val, lo, hi)
        return val

    # ----------------------------------------------------- access recording
    def _record(self, param: str, kind: str, index_node, line: int,
                extra_mask: Optional[_MaskVal] = None,
                force_guarded: bool = False) -> None:
        pos = self.param_pos[param]
        if extra_mask is not None:
            self.mask_stack.append(extra_mask)
        try:
            comps = index_node.elts if isinstance(index_node, ast.Tuple) \
                else [index_node]
            exprs: Optional[List[SymExpr]] = []
            for comp in comps:
                val = self._eval(comp)
                if not isinstance(val, SymExpr):
                    exprs = None
                    break
                exprs.append(val)
        finally:
            if extra_mask is not None:
                self.mask_stack.pop()
        guarded = force_guarded or self._guarded_now() \
            or extra_mask is not None \
            or (exprs is not None and
                any(_has_approx_nodes(e) for e in exprs))
        exact = True
        if exprs is not None:
            exact = all(_endpoint_exact(e) for e in exprs)
        self.accesses.append(RegionAccess(
            param=param, index=pos, kind=kind, line=line,
            exprs=None if exprs is None else tuple(exprs),
            guarded=guarded, exact=exact))

    def _record_top(self, param: str, kind: str, line: int) -> None:
        self.accesses.append(RegionAccess(
            param=param, index=self.param_pos[param], kind=kind, line=line,
            exprs=None, guarded=True, exact=False))

    # ------------------------------------------------------- mask parsing
    def _parse_compare(self, node: ast.Compare,
                       negate: bool = False) -> Optional[_MaskVal]:
        if len(node.ops) != 1 or len(node.comparators) != 1:
            return None
        op = node.ops[0]
        left, right = node.left, node.comparators[0]
        name_side, expr_side, flipped = None, None, False
        if isinstance(left, ast.Name) and isinstance(self.env.get(left.id),
                                                     SymExpr):
            name_side, expr_side = left.id, right
        elif isinstance(right, ast.Name) and \
                isinstance(self.env.get(right.id), SymExpr):
            name_side, expr_side, flipped = right.id, left, True
        else:
            return None
        bound = self._eval(expr_side)
        if not isinstance(bound, SymExpr):
            return None
        kind = type(op)
        if flipped:
            kind = {ast.Lt: ast.Gt, ast.Gt: ast.Lt,
                    ast.LtE: ast.GtE, ast.GtE: ast.LtE}.get(kind, kind)
        if negate:
            kind = {ast.Lt: ast.GtE, ast.GtE: ast.Lt,
                    ast.Gt: ast.LtE, ast.LtE: ast.Gt}.get(kind)
            if kind is None:
                return None
        one = Const(1.0)
        if kind is ast.Lt:          # name < bound
            pair = (None, bound)
        elif kind is ast.LtE:       # name <= bound  →  name < bound+1
            pair = (None, Add(bound, one))
        elif kind is ast.Gt:        # name > bound   →  name >= bound+1
            pair = (Add(bound, one), None)
        elif kind is ast.GtE:       # name >= bound
            pair = (bound, None)
        elif kind is ast.Eq and not negate:
            pair = (bound, Add(bound, one))
        else:
            return None
        return _MaskVal({name_side: [pair]})

    def _parse_mask(self, node) -> Optional[_MaskVal]:
        """Parse a guard expression into per-name bounds.

        Conjunctions keep every conjunct that parses (dropping a conjunct
        only widens the mask — sound).
        """
        if isinstance(node, ast.Compare):
            return self._parse_compare(node)
        if isinstance(node, ast.Name):
            val = self.env.get(node.id)
            return val if isinstance(val, _MaskVal) else None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitAnd):
            a = self._parse_mask(node.left)
            b = self._parse_mask(node.right)
            if a is None:
                return b
            return a if b is None else a.merged(b)
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            masks = [m for m in (self._parse_mask(v) for v in node.values)
                     if m is not None]
            if not masks:
                return None
            out = masks[0]
            for m in masks[1:]:
                out = out.merged(m)
            return out
        return None

    # -------------------------------------------------- expression eval
    def _eval(self, node) -> object:
        """Abstract value of an expression; records buffer reads met."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return _OPAQUE
            if isinstance(node.value, (int, float)):
                return Const(node.value)
            return _OPAQUE
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and \
                    base.id in _LANE_BASES + _UNIFORM_BASES and \
                    node.attr in ("x", "y", "z"):
                return Var(f"{base.id}.{node.attr}")
            inner = self._eval(base)
            if isinstance(inner, _Dim3Val) and node.attr in ("x", "y", "z"):
                return inner.axis(node.attr)
            return _OPAQUE
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.BitAnd):
                mask = self._parse_mask(node)
                if mask is not None:
                    return mask
            left = self._eval(node.left)
            right = self._eval(node.right)
            if isinstance(left, SymExpr) and isinstance(right, SymExpr):
                if isinstance(node.op, ast.Add):
                    return Add(left, right)
                if isinstance(node.op, ast.Sub):
                    return Sub(left, right)
                if isinstance(node.op, ast.Mult):
                    return Mul(left, right)
                if isinstance(node.op, ast.FloorDiv):
                    return FloorDiv(left, right)
            return _OPAQUE
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                inner = self._eval(node.operand)
                return Neg(inner) if isinstance(inner, SymExpr) else _OPAQUE
            if isinstance(node.op, ast.Not):
                self._eval(node.operand)
                return _OPAQUE
            return _OPAQUE
        if isinstance(node, ast.Compare):
            mask = self._parse_compare(node)
            if mask is not None:
                return mask
            self._eval(node.left)
            for comp in node.comparators:
                self._eval(comp)
            return _OPAQUE
        if isinstance(node, ast.BoolOp):
            mask = self._parse_mask(node)
            if mask is not None:
                return mask
            for v in node.values:
                self._eval(v)
            return _OPAQUE
        if isinstance(node, ast.Subscript):
            param = self._param_of(node.value)
            if param is not None:
                self._record(param, "r", node.slice, node.lineno)
            else:
                self._eval(node.value)
                self._eval(node.slice)
            return _OPAQUE
        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                self._eval(elt)
            return _OPAQUE
        if isinstance(node, ast.IfExp):
            mask = self._parse_mask(node.test)
            then = self._eval_masked(node.body, mask)
            other = self._eval(node.orelse)
            if isinstance(then, SymExpr) and isinstance(other, SymExpr):
                return Join(then, other)
            return _OPAQUE
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        # unknown expression form: walk for nested accesses, give up on value
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
        return _OPAQUE

    def _eval_masked(self, node, mask: Optional[_MaskVal]) -> object:
        if mask is None:
            return self._eval(node)
        self.mask_stack.append(mask)
        try:
            return self._eval(node)
        finally:
            self.mask_stack.pop()

    def _callee(self, node: ast.Call) -> str:
        fn = node.func
        if isinstance(fn, ast.Name):
            return fn.id
        if isinstance(fn, ast.Attribute):
            return fn.attr
        return ""

    def _eval_call(self, node: ast.Call) -> object:
        name = self._callee(node)
        args = node.args
        if name == "global_idx" and not args:
            return _Dim3Val()
        if name in _REDUCTIONS:
            for a in args:
                self._eval(a)
            return _OPAQUE
        if name == "lane_where" and len(args) == 3:
            mask = self._parse_mask(args[0])
            neg = self._parse_compare(args[0], negate=True) \
                if isinstance(args[0], ast.Compare) else None
            then = self._eval_masked(args[1], mask)
            other = self._eval_masked(args[2], neg)
            if isinstance(then, SymExpr) and isinstance(other, SymExpr):
                return Join(then, other)
            return _OPAQUE
        if name in _MASKED_READS and len(args) >= 3:
            param = self._param_of(args[0])
            mask = self._parse_mask(args[2])
            if param is not None:
                self._record(param, "r", args[1], node.lineno,
                             extra_mask=mask, force_guarded=True)
            else:
                self._eval(args[0])
                self._eval_masked(args[1], mask)
            for a in args[3:]:
                self._eval(a)
            return _OPAQUE
        if name in _MASKED_WRITES and len(args) >= 4:
            param = self._param_of(args[0])
            mask = self._parse_mask(args[3])
            self._eval(args[2])
            if param is not None:
                self._record(param, "w", args[1], node.lineno,
                             extra_mask=mask, force_guarded=True)
            else:
                self._eval(args[0])
                self._eval_masked(args[1], mask)
            return _OPAQUE
        if name in ATOMIC_FUNCTIONS and len(args) >= 2:
            param = self._param_of(args[0])
            for a in args[2:]:
                self._eval(a)
            if param is not None:
                # read-modify-write on the same cell
                self._record(param, "r", args[1], node.lineno)
                self._record(param, "w", args[1], node.lineno)
            else:
                self._eval(args[0])
                self._eval(args[1])
            return _OPAQUE
        if name in ("int", "float", "abs") and len(args) == 1:
            inner = self._eval(args[0])
            return inner if isinstance(inner, SymExpr) else _OPAQUE
        if name == "compress_lanes":
            # value position (not the canonical tuple-assign): lanes only
            # narrow, so the uncompressed value is a sound over-approximation
            mask = self._parse_mask(args[0]) if args else None
            if len(args) == 2:
                return self._eval_masked(args[1], mask)
            for a in args[1:]:
                self._eval_masked(a, mask)
            return _OPAQUE
        # unknown callee (helpers, shared_array, appends …)
        for a in args:
            self._eval(a)
        for kw in node.keywords:
            self._eval(kw.value)
        return _OPAQUE

    # ---------------------------------------------------- statement walk
    def walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if self._stopped:
                return
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        handler = getattr(self, f"_stmt_{type(node).__name__}", None)
        if handler is not None:
            handler(node)
            return
        if isinstance(node, (ast.Pass, ast.Break, ast.Continue,
                             ast.Global, ast.Nonlocal, ast.Import,
                             ast.ImportFrom)):
            return
        # unsupported statement: opaque its targets, record any buffer
        # touches inside as ⊤ so the summary stays an over-approximation
        self._reason(f"unsupported statement {type(node).__name__} "
                     f"at line {getattr(node, 'lineno', 0)}")
        self._opaque_subtree(node)

    def _opaque_subtree(self, node) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                self.env[sub.id] = _OPAQUE
            elif isinstance(sub, ast.Subscript):
                param = self._param_of(sub.value)
                if param is not None:
                    kind = "w" if isinstance(sub.ctx, ast.Store) else "r"
                    self._record_top(param, kind, sub.lineno)
            elif isinstance(sub, ast.Call):
                callee = self._callee(sub)
                target = sub.args[0] if sub.args else None
                param = self._param_of(target) if target is not None else None
                if param is not None:
                    if callee in _MASKED_WRITES or callee in ATOMIC_FUNCTIONS:
                        self._record_top(param, "w", sub.lineno)
                        self._record_top(param, "r", sub.lineno)
                    elif callee in _MASKED_READS:
                        self._record_top(param, "r", sub.lineno)

    def _assign_name(self, name: str, value_node) -> None:
        if isinstance(value_node, ast.Call) and \
                self._callee(value_node) == "compress_lanes":
            mask = self._parse_mask(value_node.args[0]) \
                if value_node.args else None
            vals = value_node.args[1:]
            if len(vals) == 1:
                self.env[name] = self._clamped(vals[0], mask)
                return
        val = self._eval(value_node)
        self.env[name] = val if isinstance(val, (SymExpr, _MaskVal,
                                                 _Dim3Val)) else _OPAQUE

    def _clamped(self, node, mask: Optional[_MaskVal]) -> object:
        """Value of *node* permanently narrowed by *mask* (compress_lanes)."""
        val = self._eval(node)
        if not isinstance(val, SymExpr):
            return _OPAQUE
        if mask is not None and isinstance(node, ast.Name):
            for lo, hi in mask.bounds.get(node.id, ()):
                val = Clamp(val, lo, hi)
        return val

    def _stmt_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self._assign_name(target.id, node.value)
                return
            if isinstance(target, ast.Tuple) and \
                    all(isinstance(t, ast.Name) for t in target.elts):
                if isinstance(node.value, ast.Call) and \
                        self._callee(node.value) == "compress_lanes" and \
                        len(node.value.args) == len(target.elts) + 1:
                    mask = self._parse_mask(node.value.args[0])
                    for tgt, val in zip(target.elts, node.value.args[1:]):
                        self.env[tgt.id] = self._clamped(val, mask)
                    return
                if isinstance(node.value, ast.Tuple) and \
                        len(node.value.elts) == len(target.elts):
                    vals = [self._eval(v) for v in node.value.elts]
                    for tgt, val in zip(target.elts, vals):
                        self.env[tgt.id] = val if isinstance(
                            val, (SymExpr, _MaskVal, _Dim3Val)) else _OPAQUE
                    return
                self._eval(node.value)
                for tgt in target.elts:
                    self.env[tgt.id] = _OPAQUE
                return
            if isinstance(target, ast.Subscript):
                param = self._param_of(target.value)
                self._eval(node.value)
                if param is not None:
                    self._record(param, "w", target.slice, target.lineno)
                else:
                    self._eval(target.value)
                    self._eval(target.slice)
                return
        # multiple / exotic targets
        self._eval(node.value)
        self._opaque_subtree(ast.Module(body=list(node.targets),
                                        type_ignores=[]))

    def _stmt_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        if isinstance(node.target, ast.Name):
            self._assign_name(node.target.id, node.value)
        else:
            self._stmt_Assign(ast.Assign(targets=[node.target],
                                         value=node.value,
                                         lineno=node.lineno))

    def _stmt_AugAssign(self, node: ast.AugAssign) -> None:
        self._eval(node.value)
        if isinstance(node.target, ast.Name):
            base = self._lookup(node.target.id)
            incr = self._eval(node.value)
            if isinstance(base, SymExpr) and isinstance(incr, SymExpr):
                if isinstance(node.op, ast.Add):
                    self.env[node.target.id] = Add(base, incr)
                    return
                if isinstance(node.op, ast.Sub):
                    self.env[node.target.id] = Sub(base, incr)
                    return
            self.env[node.target.id] = _OPAQUE
            return
        if isinstance(node.target, ast.Subscript):
            param = self._param_of(node.target.value)
            if param is not None:
                self._record(param, "r", node.target.slice, node.lineno)
                self._record(param, "w", node.target.slice, node.lineno)
            else:
                self._eval(node.target.value)
                self._eval(node.target.slice)

    def _stmt_Expr(self, node: ast.Expr) -> None:
        self._eval(node.value)

    def _stmt_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._eval(node.value)
        self._stopped = True

    def _stmt_Assert(self, node: ast.Assert) -> None:
        self._eval(node.test)

    # ------------------------------------------------------------ branches
    def _is_early_lane_guard(self, node: ast.If) -> bool:
        """``if not any_lane(m): return`` — the canonical tail guard."""
        test = node.test
        if not (isinstance(test, ast.UnaryOp) and
                isinstance(test.op, ast.Not) and
                isinstance(test.operand, ast.Call) and
                self._callee(test.operand) in _REDUCTIONS):
            return False
        return all(isinstance(s, (ast.Return, ast.Continue, ast.Break))
                   for s in node.body) and not node.orelse

    def _is_uniform_test(self, node) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return self._is_uniform_test(node.operand)
        if isinstance(node, ast.Call) and self._callee(node) in _REDUCTIONS:
            return True
        val = self._eval(node)
        if isinstance(val, SymExpr):
            return not _has_lane_vars(val)
        return False

    def _stmt_If(self, node: ast.If) -> None:
        if self._is_early_lane_guard(node):
            return
        mask = self._parse_mask(node.test)
        uniform = mask is None and self._is_uniform_test(node.test)
        lane_guard = not uniform

        saved = dict(self.env)
        saved_depth = self.guard_depth
        if mask is not None:
            self.mask_stack.append(mask)
        elif lane_guard:
            self.guard_depth += 1
        body_stopped = False
        try:
            self.walk(node.body)
            body_stopped = self._stopped
            self._stopped = False
        finally:
            if mask is not None:
                self.mask_stack.pop()
            self.guard_depth = saved_depth
        env_body = self.env

        self.env = dict(saved)
        if lane_guard:
            self.guard_depth += 1
        else_stopped = False
        try:
            if node.orelse:
                self.walk(node.orelse)
                else_stopped = self._stopped
                self._stopped = False
        finally:
            self.guard_depth = saved_depth
        env_else = self.env

        self.env = self._merge_envs(saved, env_body, env_else)
        if body_stopped or else_stopped:
            if lane_guard:
                # some lanes returned early: the tail is implicitly masked
                self.tail_guarded = True
            elif body_stopped and else_stopped:
                self._stopped = True

    @staticmethod
    def _merge_envs(saved: Dict, a: Dict, b: Dict) -> Dict:
        out: Dict[str, object] = {}
        for name in set(a) | set(b):
            va = a.get(name, saved.get(name, _OPAQUE))
            vb = b.get(name, saved.get(name, _OPAQUE))
            if va is vb:
                out[name] = va
            elif isinstance(va, SymExpr) and isinstance(vb, SymExpr):
                out[name] = va if va == vb else Join(va, vb)
            elif isinstance(va, _MaskVal) and isinstance(vb, _MaskVal) and \
                    va.key() == vb.key():
                out[name] = va
            else:
                out[name] = _OPAQUE
        return out

    # --------------------------------------------------------------- loops
    @staticmethod
    def _assigned_names(body: Sequence[ast.stmt]) -> Set[str]:
        names: Set[str] = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and \
                        isinstance(sub.ctx, ast.Store):
                    names.add(sub.id)
                elif isinstance(sub, (ast.For, ast.comprehension)):
                    tgt = sub.target
                    if isinstance(tgt, ast.Name):
                        names.add(tgt.id)
        return names

    def _range_interval(self, node) -> Optional[SymExpr]:
        """``range(n)`` / ``range(a, b)`` loop variable as a clamped value."""
        if not (isinstance(node, ast.Call) and
                self._callee(node) == "range" and
                1 <= len(node.args) <= 2 and not node.keywords):
            return None
        vals = [self._eval(a) for a in node.args]
        if not all(isinstance(v, SymExpr) for v in vals):
            return None
        lo, hi = (Const(0.0), vals[0]) if len(vals) == 1 else vals
        return Clamp(Var("<loop>"), lo, hi)

    def _stmt_For(self, node: ast.For) -> None:
        carried = self._assigned_names(node.body)
        loop_val = self._range_interval(node.iter)
        if loop_val is None:
            self._eval(node.iter)
        target = node.target
        for name in carried:
            self.env[name] = _OPAQUE
        if isinstance(target, ast.Name):
            self.env[target.id] = loop_val if loop_val is not None \
                else _OPAQUE
        else:
            self._opaque_subtree(target)
        self.walk(node.body)
        self._stopped = False
        if node.orelse:
            self.walk(node.orelse)
            self._stopped = False

    def _stmt_While(self, node: ast.While) -> None:
        self._eval(node.test)
        carried = self._assigned_names(node.body)
        for name in carried:
            self.env[name] = _OPAQUE
        self.walk(node.body)
        self._stopped = False
        # one abstract pass only: anything the body rebinds is
        # iteration-dependent and must stay ⊤ afterwards
        for name in carried:
            self.env[name] = _OPAQUE
        if node.orelse:
            self.walk(node.orelse)
            self._stopped = False

    def _stmt_FunctionDef(self, node) -> None:
        self.env[node.name] = _OPAQUE

    _stmt_AsyncFunctionDef = _stmt_FunctionDef


# --------------------------------------------------------------------------
# summaries (launch independent)
# --------------------------------------------------------------------------

def _underlying_fn(kern):
    return getattr(kern, "fn", kern)


def kernel_regions(kern) -> RegionSummary:
    """Symbolic access summary of a kernel body; memoised on the function."""
    fn = _underlying_fn(kern)
    cached = getattr(fn, "_repro_region_summary", None)
    if cached is not None:
        return cached
    name = getattr(kern, "name", None) or getattr(fn, "__name__", "<kernel>")
    summary = _build_summary(fn, name)
    try:
        fn._repro_region_summary = summary
    except (AttributeError, TypeError):  # pragma: no cover - builtins
        pass
    return summary


def _build_summary(fn, name: str) -> RegionSummary:
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        source_file = inspect.getsourcefile(fn) or ""
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return RegionSummary(kernel=name, source="", params=(),
                             accesses=(), analyzable=False,
                             reasons=("source unavailable",))
    offset = getattr(getattr(fn, "__code__", None), "co_firstlineno", 1) - 1
    if offset:
        ast.increment_lineno(tree, offset)
    fndef = next((n for n in tree.body
                  if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))),
                 None)
    if fndef is None:  # pragma: no cover - defensive
        return RegionSummary(kernel=name, source=source_file, params=(),
                             accesses=(), analyzable=False,
                             reasons=("no function definition",))
    params = tuple(a.arg for a in
                   list(fndef.args.posonlyargs) + list(fndef.args.args))
    interp = _RegionInterp(name, source_file, params)
    try:
        interp.walk(fndef.body)
    except RecursionError:  # pragma: no cover - pathological bodies
        return RegionSummary(kernel=name, source=source_file, params=params,
                             accesses=tuple(
                                 RegionAccess(p, i, k, 0, None, True, False)
                                 for i, p in enumerate(params)
                                 for k in ("r", "w")),
                             analyzable=False, reasons=("body too deep",))
    return RegionSummary(kernel=name, source=source_file, params=params,
                         accesses=tuple(interp.accesses), analyzable=True,
                         reasons=tuple(interp.reasons))


# --------------------------------------------------------------------------
# concretization against a launch + argument binding
# --------------------------------------------------------------------------

Box = Tuple[Tuple[int, int], ...]     # inclusive per-dim intervals


@dataclass(frozen=True)
class ArgRegion:
    """Concrete access boxes of one tensor argument under one launch.

    ``reads``/``writes`` are clipped to the buffer extent (what the lanes
    can actually touch) — the form racecheck and the traffic model want.
    ``access_key`` is the *unclipped* per-access fingerprint, which the
    fusion cover check compares: clipping could make two different lane
    populations look identical at the boundary.
    """

    index: int
    param: str
    shape: Tuple[int, ...]
    elem_bytes: int
    reads: Tuple[Box, ...]
    writes: Tuple[Box, ...]
    exact: bool                       # no ⊤ access hit this argument
    access_key: Tuple = ()            # ((kind, line, raw box | None), ...)


@dataclass(frozen=True)
class OOBFinding:
    param: str
    kind: str
    line: int
    dim: int
    lo: int
    hi: int
    extent: int
    guarded: bool


@dataclass(frozen=True)
class LaunchRegions:
    """Concretized regions of one ``(kernel, launch, shapes)`` triple."""

    kernel: str
    source: str
    regions: Tuple[ArgRegion, ...]
    oob: Tuple[OOBFinding, ...]
    proven_lines: frozenset
    unproven_lines: frozenset
    read_bytes: float
    write_bytes: float

    def by_index(self) -> Dict[int, ArgRegion]:
        return {r.index: r for r in self.regions}


def _arg_key(arg) -> Tuple:
    shape = _arg_shape(arg)
    if shape is not None:
        return ("T", shape, _arg_elem_bytes(arg))
    if isinstance(arg, (bool,)):
        return ("S", float(arg))
    if isinstance(arg, (int, float)):
        return ("S", float(arg))
    try:
        import numpy as _np
        if isinstance(arg, _np.generic):
            return ("S", float(arg))
    except Exception:  # pragma: no cover - numpy always present
        pass
    return ("O",)


def _arg_shape(arg) -> Optional[Tuple[int, ...]]:
    if isinstance(arg, TensorSpec):
        return tuple(int(d) for d in arg.shape)
    layout = getattr(arg, "layout", None)
    if layout is not None and hasattr(layout, "shape"):
        return tuple(int(d) for d in layout.shape)
    if hasattr(arg, "freed") and hasattr(arg, "count"):   # DeviceBuffer
        return (int(arg.count),)
    return None


def _arg_elem_bytes(arg) -> int:
    if isinstance(arg, TensorSpec):
        return arg.elem_bytes
    dtype = getattr(arg, "dtype", None)
    sizeof = getattr(dtype, "sizeof", None)
    return int(sizeof) if sizeof is not None else 8


def _launch_key(launch) -> Tuple:
    bd, gd = launch.block_dim, launch.grid_dim
    return (bd.x, bd.y, bd.z, gd.x, gd.y, gd.z)


def concretize_launch(kern, args, launch) -> Optional[LaunchRegions]:
    """Integer access boxes of *kern* under *launch* with *args* bound.

    Memoised per ``(kernel function, launch dims, argument signature)``;
    repeat calls on a hot path reduce to two dict lookups.  Returns
    ``None`` when the body source is unavailable (the caller falls back to
    whole-buffer reasoning).
    """
    fn = _underlying_fn(kern)
    key = (_launch_key(launch), tuple(_arg_key(a) for a in args))
    cache = getattr(fn, "_repro_region_cache", None)
    if cache is None:
        cache = {}
        try:
            fn._repro_region_cache = cache
        except (AttributeError, TypeError):  # pragma: no cover
            return _concretize_uncached(kern, args, launch)
    hit = cache.get(key, False)
    if hit is not False:
        return hit
    result = _concretize_uncached(kern, args, launch)
    if len(cache) > 64:               # sweep-sized launch spaces, bounded
        cache.clear()
    cache[key] = result
    return result


def _concretize_uncached(kern, args, launch) -> Optional[LaunchRegions]:
    fn = _underlying_fn(kern)
    parts = getattr(fn, "_repro_fused_parts", None)
    if parts:
        return _concretize_fused(kern, parts, args, launch)
    summary = kernel_regions(kern)
    if not summary.analyzable:
        return None
    return _concretize_summary(summary, args, launch)


def _concretize_fused(kern, parts, args, launch) -> Optional[LaunchRegions]:
    name = getattr(kern, "name", None) or _underlying_fn(kern).__name__
    merged: Dict[int, ArgRegion] = {}
    oob: List[OOBFinding] = []
    proven: Set = set()
    unproven: Set = set()
    rb = wb = 0.0
    source = ""
    for part, idxs in parts:
        part_args = [args[i] for i in idxs]
        lr = concretize_launch(part, part_args, launch)
        if lr is None:
            return None
        source = source or lr.source
        oob.extend(lr.oob)
        proven.update(lr.proven_lines)
        unproven.update(lr.unproven_lines)
        rb += lr.read_bytes
        wb += lr.write_bytes
        for region in lr.regions:
            pos = idxs[region.index]
            prev = merged.get(pos)
            if prev is None:
                merged[pos] = ArgRegion(
                    index=pos, param=region.param, shape=region.shape,
                    elem_bytes=region.elem_bytes, reads=region.reads,
                    writes=region.writes, exact=region.exact,
                    access_key=region.access_key)
            else:
                merged[pos] = ArgRegion(
                    index=pos, param=prev.param, shape=prev.shape,
                    elem_bytes=prev.elem_bytes,
                    reads=prev.reads + region.reads,
                    writes=prev.writes + region.writes,
                    exact=prev.exact and region.exact
                    and prev.shape == region.shape,
                    access_key=prev.access_key + region.access_key)
    return LaunchRegions(
        kernel=name, source=source,
        regions=tuple(merged[i] for i in sorted(merged)),
        oob=tuple(oob), proven_lines=frozenset(proven - unproven),
        unproven_lines=frozenset(unproven),
        read_bytes=rb, write_bytes=wb)


def _concretize_summary(summary: RegionSummary, args,
                        launch) -> LaunchRegions:
    env = launch_env(launch)
    # uniform range() loop variables carry their bounds as Clamp nodes;
    # the underlying iteration variable itself spans everything
    env["<loop>"] = Interval(float("-inf"), float("inf"))
    shapes: Dict[int, Tuple[int, ...]] = {}
    elems: Dict[int, int] = {}
    for i, (pname, arg) in enumerate(zip(summary.params, args)):
        shape = _arg_shape(arg)
        if shape is not None:
            shapes[i] = shape
            elems[i] = _arg_elem_bytes(arg)
        elif isinstance(arg, (bool, int, float)):
            v = float(arg)
            env[pname] = Interval(v, v)
        else:
            try:
                import numpy as _np
                if isinstance(arg, _np.generic):
                    v = float(arg)
                    env[pname] = Interval(v, v)
            except Exception:  # pragma: no cover
                pass

    reads: Dict[int, List[Box]] = {}
    writes: Dict[int, List[Box]] = {}
    inexact: Set[int] = set()
    keys: Dict[int, List[Tuple]] = {}
    oob: List[OOBFinding] = []
    proven: Set = set()
    unproven: Set = set()
    rb = wb = 0.0

    for acc in summary.accesses:
        if acc.index >= len(args):
            continue
        shape = shapes.get(acc.index)
        if shape is None:
            continue                   # scalar param subscripts: impossible
        elem = elems[acc.index]
        sink = reads if acc.kind == "r" else writes
        box = _concrete_box(acc, shape, env)
        keys.setdefault(acc.index, []).append(
            (acc.kind, acc.line,
             None if box is None else _normalize_box(box)))
        if box is None:
            # ⊤: the whole buffer
            inexact.add(acc.index)
            unproven.add(acc.line)
            whole = tuple((0, d - 1) for d in shape)
            sink.setdefault(acc.index, []).append(whole)
            vol = _box_volume(whole) * elem
            if acc.kind == "r":
                rb += vol
            else:
                wb += vol
            continue
        in_bounds = True
        clipped: List[Tuple[int, int]] = []
        for dim, ((lo, hi), extent) in enumerate(zip(box, shape)):
            if lo > hi:
                clipped = None
                break
            if lo < 0 or hi > extent - 1:
                in_bounds = False
                must = (not acc.guarded) and acc.exact
                entirely_out = hi < 0 or lo > extent - 1
                if must or entirely_out:
                    oob.append(OOBFinding(
                        param=acc.param, kind=acc.kind, line=acc.line,
                        dim=dim, lo=lo, hi=hi, extent=extent,
                        guarded=acc.guarded))
            clo, chi = max(lo, 0), min(hi, extent - 1)
            if clo > chi:
                clipped = None
                break
            clipped.append((clo, chi))
        if in_bounds and clipped is not None:
            proven.add(acc.line)
        else:
            unproven.add(acc.line)
        if clipped is None:            # provably empty lane set
            continue
        cbox = tuple(clipped)
        sink.setdefault(acc.index, []).append(cbox)
        vol = _box_volume(cbox) * elem
        if acc.kind == "r":
            rb += vol
        else:
            wb += vol

    regions = []
    for idx in sorted(shapes):
        regions.append(ArgRegion(
            index=idx, param=summary.params[idx], shape=shapes[idx],
            elem_bytes=elems[idx],
            reads=tuple(reads.get(idx, ())),
            writes=tuple(writes.get(idx, ())),
            exact=idx not in inexact,
            access_key=tuple(keys.get(idx, ()))))
    return LaunchRegions(
        kernel=summary.kernel, source=summary.source,
        regions=tuple(regions), oob=tuple(oob),
        proven_lines=frozenset(proven - unproven),
        unproven_lines=frozenset(unproven),
        read_bytes=rb, write_bytes=wb)


def _concrete_box(acc: RegionAccess, shape: Tuple[int, ...],
                  env) -> Optional[Box]:
    if acc.exprs is None or len(acc.exprs) != len(shape):
        return None
    box: List[Tuple[int, int]] = []
    for expr in acc.exprs:
        iv = expr.interval(env)
        if iv is None or not iv.finite:
            return None
        box.append((int(math.ceil(iv.lo)), int(math.floor(iv.hi))))
    return tuple(box)


def _box_volume(box: Box) -> float:
    vol = 1.0
    for lo, hi in box:
        if hi < lo:
            return 0.0
        vol *= hi - lo + 1
    return vol


def _normalize_box(box: Box) -> Box:
    """Canonicalize empty boxes so equal lane populations compare equal."""
    if any(hi < lo for lo, hi in box):
        return tuple((0, -1) for _ in box)
    return box


# --------------------------------------------------------------------------
# consumers
# --------------------------------------------------------------------------

def bounds_diagnostics(kern, args, launch) -> List[Diagnostic]:
    """KV106 diagnostics for *kern* under one concrete launch."""
    from .verifier import RULE_OOB_ACCESS
    lr = concretize_launch(kern, args, launch)
    if lr is None:
        return []
    diags = []
    seen = set()
    for f in lr.oob:
        key = (f.param, f.kind, f.line, f.dim)
        if key in seen:
            continue
        seen.add(key)
        what = "write" if f.kind == "w" else "read"
        diags.append(Diagnostic(
            rule=RULE_OOB_ACCESS, severity=Severity.ERROR,
            subject=lr.kernel,
            message=(f"{what} of parameter {f.param!r} spans indices "
                     f"[{f.lo}..{f.hi}] in dim {f.dim} but the extent is "
                     f"{f.extent} under launch "
                     f"{_launch_text(launch)}"),
            source=lr.source, line=f.line, category="kernel"))
    return diags


def _launch_text(launch) -> str:
    bd, gd = launch.block_dim, launch.grid_dim
    return (f"grid=({gd.x},{gd.y},{gd.z}) block=({bd.x},{bd.y},{bd.z})")


@dataclass(frozen=True)
class BufferRegion:
    """Merged access boxes one op performs on one buffer."""

    shape: Tuple[int, ...]
    reads: Tuple[Box, ...]
    writes: Tuple[Box, ...]
    exact: bool


def buffer_region(op, buf) -> Optional[BufferRegion]:
    """Region an ``_Op`` touches on *buf*; None = unknown (whole buffer).

    Kernel ops concretize their region summary; transfers and memsets span
    the whole buffer exactly by definition.
    """
    kind = getattr(op, "kind", "")
    meta = getattr(op, "meta", None) or {}
    if kind == "kernel":
        kern, args, launch = (meta.get("kern"), meta.get("args"),
                              meta.get("launch"))
        if kern is None or args is None or launch is None:
            return None
        lr = concretize_launch(kern, args, launch)
        if lr is None:
            return None
        by_index = lr.by_index()
        found = False
        shape: Optional[Tuple[int, ...]] = None
        reads: List[Box] = []
        writes: List[Box] = []
        exact = True
        for i, arg in enumerate(args):
            target = getattr(arg, "device_buffer", arg)
            if target is not buf:
                continue
            region = by_index.get(i)
            if region is None:
                return None
            if shape is None:
                shape = region.shape
            elif shape != region.shape:
                return None           # aliased under different shapes
            found = True
            reads.extend(region.reads)
            writes.extend(region.writes)
            exact = exact and region.exact
        if not found:
            return None               # buffer reached outside the arg list
        return BufferRegion(shape=shape, reads=tuple(reads),
                            writes=tuple(writes), exact=exact)
    count = getattr(buf, "count", None)
    if count is None:
        return None
    whole = ((0, int(count) - 1),)
    if kind == "d2h":
        return BufferRegion(shape=(int(count),), reads=(whole,),
                            writes=(), exact=True)
    if kind in ("h2d", "memset"):
        return BufferRegion(shape=(int(count),), reads=(),
                            writes=(whole,), exact=True)
    return None


def _boxes_intersect(a: Box, b: Box) -> Optional[Box]:
    out = []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo, hi = max(alo, blo), min(ahi, bhi)
        if lo > hi:
            return None
        out.append((lo, hi))
    return tuple(out)


def region_conflict(op_a, op_b, buf):
    """Refine a whole-buffer conflict between two ops using regions.

    Returns:

    * ``None`` — no region information; keep the whole-buffer verdict.
    * ``"disjoint"`` — every conflicting access-box pair is disjoint.
    * ``"full"`` — conflicting boxes intersect and every intersecting
      pair is identical (the classic same-region race).
    * ``("partial", box, shape)`` — boxes overlap without coinciding;
      *box* is the widest conflicting interval.
    """
    ra = buffer_region(op_a, buf)
    rb = buffer_region(op_b, buf)
    if ra is None or rb is None or not (ra.exact and rb.exact):
        return None
    if ra.shape != rb.shape:
        return None
    pairs = [(w, o) for w in ra.writes for o in rb.reads + rb.writes]
    pairs += [(o, w) for w in rb.writes for o in ra.reads]
    best: Optional[Box] = None
    identical = True
    for a, b in pairs:
        inter = _boxes_intersect(a, b)
        if inter is None:
            continue
        if a != b:
            identical = False
        if best is None or _box_volume(inter) > _box_volume(best):
            best = inter
    if best is None:
        return "disjoint"
    if identical:
        return "full"
    return ("partial", best, ra.shape)


def box_text(box: Box) -> str:
    """Human-readable inclusive index box, e.g. ``[0..127, 4..4]``."""
    return "[" + ", ".join(f"{lo}..{hi}" for lo, hi in box) + "]"


def launch_traffic(kern, args, launch) -> Optional[Tuple[float, float]]:
    """(read_bytes, write_bytes) the kernel moves under one launch."""
    lr = concretize_launch(kern, args, launch)
    if lr is None:
        return None
    return (lr.read_bytes, lr.write_bytes)


def _all_accesses_regioned(kern, lr: LaunchRegions) -> bool:
    """True when every accessed parameter produced a concrete region."""
    regioned = {r.index for r in lr.regions}
    fn = _underlying_fn(kern)
    parts = getattr(fn, "_repro_fused_parts", None)
    if parts is None:
        parts = ((kern, tuple(range(len(kernel_regions(kern).params)))),)
    for part, idxs in parts:
        summary = kernel_regions(part)
        for acc in summary.accesses:
            if acc.index >= len(idxs) or idxs[acc.index] not in regioned:
                return False
    return True


def covers(kern, args, own, leader) -> bool:
    """Cover-set fusion legality: may *kern* run under *leader*'s launch?

    True when the kernel's concrete access regions are exact and identical
    under its own launch and the leader's (the extra lanes the leader may
    carry are all masked off by the kernel's guards), and the leader
    launch introduces no out-of-bounds access.  Identical regions make the
    substitution observationally equivalent, which is precisely what
    bit-identical replay needs.
    """
    a = concretize_launch(kern, args, own)
    b = concretize_launch(kern, args, leader)
    if a is None or b is None:
        return False
    if a.oob or b.oob:
        return False
    if len(a.regions) != len(b.regions):
        return False
    # every accessed parameter must actually have a concretized region —
    # an access on an argument whose shape we cannot determine is skipped
    # during concretization, and "no information" must not read as "safe"
    if not _all_accesses_regioned(kern, a):
        return False
    for ra, rb in zip(a.regions, b.regions):
        if not (ra.exact and rb.exact):
            return False
        # compare the *unclipped* per-access fingerprints: clipping to the
        # buffer extent could make two different lane populations look the
        # same at the boundary while the leader's extra lanes actually land
        # out of bounds at replay
        if (ra.index, ra.shape, ra.access_key) != \
                (rb.index, rb.shape, rb.access_key):
            return False
    return True
