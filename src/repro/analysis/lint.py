"""Orchestration for ``repro lint``: verify kernels, race-check graphs.

Two populations are analysed:

* **kernels** — everything created through the :func:`repro.core.kernel.kernel`
  decorator.  :func:`shipped_kernels` imports the four science-kernel
  modules so their registrations exist even when nothing else has imported
  them yet, then snapshots the registry.
* **graphs** — each registered workload's :meth:`~repro.workloads.base.Workload.lint_graph`
  capture (a reduced-size recording of its real device pipeline), run
  through the happens-before race detector.

Everything is aggregated into one :class:`~repro.analysis.diagnostics.LintReport`;
the CLI and the CI gate fail on any error-severity diagnostic.
"""

from __future__ import annotations

import importlib
from typing import Dict, Iterable, Optional, Sequence

from .diagnostics import LintReport
from .racecheck import analyze_graph
from .verifier import lint_kernel

__all__ = ["lint_graphs", "lint_kernels", "run_lint", "shipped_kernels"]

#: modules whose import registers the shipped science kernels
_KERNEL_MODULES = (
    "repro.kernels.stencil.kernel",
    "repro.kernels.babelstream.kernels",
    "repro.kernels.minibude.kernel",
    "repro.kernels.hartreefock.kernel",
)


def shipped_kernels() -> Dict[str, object]:
    """All decorator-registered kernels, with the shipped modules imported.

    Returns ``{name: Kernel}``, sorted by name.  Includes any kernels other
    imported modules registered — the lint contract is that *every*
    registered kernel verifies, not just the four headline ones.
    """
    for module in _KERNEL_MODULES:
        importlib.import_module(module)
    from ..core.kernel import registered_kernels

    return registered_kernels()


def lint_kernels(kernels: Optional[Iterable] = None) -> LintReport:
    """Verify *kernels* (default: :func:`shipped_kernels`) into a report."""
    report = LintReport()
    if kernels is None:
        items = list(shipped_kernels().items())
    elif isinstance(kernels, dict):
        items = sorted(kernels.items())
    else:
        items = sorted((getattr(k, "name", getattr(k, "__name__", repr(k))), k)
                       for k in kernels)
    for name, kern in items:
        report.kernels.append(name)
        report.extend(lint_kernel(kern))
    return report


def lint_graphs(workloads: Optional[Sequence[str]] = None, *,
                optimized: bool = True) -> LintReport:
    """Race-check each workload's lint graph (default: all registered).

    A workload whose :meth:`lint_graph` returns None is recorded as a note;
    one whose capture itself raises becomes an error-severity diagnostic —
    a pipeline that cannot even be captured must not pass the lint gate
    silently.

    When *optimized* is true (the default) every captured graph is
    additionally pushed through the full :mod:`repro.graphopt` pass
    pipeline and the *transformed* graph is race-checked as its own
    subject — the graph-compiler contract is that an optimized graph lints
    as clean as its capture, including the provenance-aware ``GR203``
    reading of elided transfers.
    """
    from ..workloads import get_workload, list_workloads
    from .diagnostics import Diagnostic, Severity

    report = LintReport()
    names = list(workloads) if workloads else list(list_workloads())
    for name in names:
        workload = get_workload(name)
        try:
            graph = workload.lint_graph()
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            report.add(Diagnostic(
                rule="GR200", severity=Severity.ERROR,
                subject=workload.name,
                message=f"lint_graph() failed to capture: {exc}",
                category="graph"))
            continue
        if graph is None:
            report.notes.append(
                f"workload {workload.name!r} declares no lint graph")
            continue
        report.graphs.append(getattr(graph, "name", workload.name))
        report.extend(analyze_graph(graph))
        if not optimized:
            continue
        from ..graphopt import optimize_graph

        try:
            # check=False: the optimized graph is linted *here*, as a
            # first-class subject, so its diagnostics land in the report
            # rather than being folded into an exception.
            opt, _ = optimize_graph(graph, "all", check=False)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            report.add(Diagnostic(
                rule="GR200", severity=Severity.ERROR,
                subject=workload.name,
                message=f"graph-compiler pipeline failed on the lint "
                        f"capture: {exc}",
                category="graph"))
            continue
        report.graphs.append(getattr(opt, "name", f"{workload.name}+opt"))
        report.extend(analyze_graph(opt))
    return report


def run_lint(workloads: Optional[Sequence[str]] = None, *,
             graphs: bool = True) -> LintReport:
    """The full ``repro lint`` pass: every kernel, then the workload graphs.

    *workloads* filters the graph population only — kernel verification is
    cheap (one memoised AST walk each) and always runs over the whole
    registry, so a narrowed lint cannot hide a broken kernel.
    """
    report = lint_kernels()
    if graphs:
        report.merge(lint_graphs(workloads))
    return report
