"""Orchestration for ``repro lint``: verify kernels, race-check graphs.

Two populations are analysed:

* **kernels** — everything created through the :func:`repro.core.kernel.kernel`
  decorator.  :func:`shipped_kernels` imports the four science-kernel
  modules so their registrations exist even when nothing else has imported
  them yet, then snapshots the registry.
* **graphs** — each registered workload's :meth:`~repro.workloads.base.Workload.lint_graph`
  capture (a reduced-size recording of its real device pipeline), run
  through the happens-before race detector.

Graph linting is region-aware: every kernel op in a captured graph is
concretized against its recorded launch and buffer shapes
(:mod:`repro.analysis.regions`), which adds ``KV106`` out-of-bounds
findings, feeds the ``GR201``/``GR204`` refinement inside the race
detector, and *discharges* syntactic ``KV103`` warnings whose access the
regions prove in-bounds under every launch the graphs actually ship.
Lint captures run with enqueue-site recording forced on, so graph
diagnostics carry user-code ``file:line`` attribution.

Everything is aggregated into one :class:`~repro.analysis.diagnostics.LintReport`;
the CLI and the CI gate fail on any error-severity diagnostic.
"""

from __future__ import annotations

import importlib
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .diagnostics import Diagnostic, LintReport
from .racecheck import analyze_graph, op_elided
from .verifier import RULE_UNGUARDED_INDEX, lint_kernel

__all__ = ["discharge_proven", "lint_graphs", "lint_kernels", "run_lint",
           "shipped_kernels"]

#: modules whose import registers the shipped science kernels
_KERNEL_MODULES = (
    "repro.kernels.stencil.kernel",
    "repro.kernels.babelstream.kernels",
    "repro.kernels.minibude.kernel",
    "repro.kernels.hartreefock.kernel",
)


def shipped_kernels() -> Dict[str, object]:
    """All decorator-registered kernels, with the shipped modules imported.

    Returns ``{name: Kernel}``, sorted by name.  Includes any kernels other
    imported modules registered — the lint contract is that *every*
    registered kernel verifies, not just the four headline ones.
    """
    for module in _KERNEL_MODULES:
        importlib.import_module(module)
    from ..core.kernel import registered_kernels

    return registered_kernels()


def lint_kernels(kernels: Optional[Iterable] = None) -> LintReport:
    """Verify *kernels* (default: :func:`shipped_kernels`) into a report."""
    report = LintReport()
    if kernels is None:
        items = list(shipped_kernels().items())
    elif isinstance(kernels, dict):
        items = sorted(kernels.items())
    else:
        items = sorted((getattr(k, "name", getattr(k, "__name__", repr(k))), k)
                       for k in kernels)
    for name, kern in items:
        report.kernels.append(name)
        report.extend(lint_kernel(kern))
    return report


def lint_graphs(workloads: Optional[Sequence[str]] = None, *,
                optimized: bool = True,
                proven_lines: Optional[Dict[str, Set[int]]] = None
                ) -> LintReport:
    """Race-check each workload's lint graph (default: all registered).

    A workload whose :meth:`lint_graph` returns None is recorded as a note;
    one whose capture itself raises becomes an error-severity diagnostic —
    a pipeline that cannot even be captured must not pass the lint gate
    silently.

    When *optimized* is true (the default) every captured graph is
    additionally pushed through the full :mod:`repro.graphopt` pass
    pipeline and the *transformed* graph is race-checked as its own
    subject — the graph-compiler contract is that an optimized graph lints
    as clean as its capture, including the provenance-aware ``GR203``
    reading of elided transfers.

    Captures run with :class:`DeviceContext` site recording forced on, so
    the race-detector diagnostics can attribute findings to the user code
    line that enqueued the racing op.  Every kernel op is also concretized
    through the region analysis: out-of-bounds accesses under the shipped
    launch geometry fire ``KV106``; accesses proven in-bounds accumulate
    into *proven_lines* (``{kernel: {line}}``) for KV103 discharge.
    """
    from ..core.device import DeviceContext
    from ..workloads import get_workload, list_workloads
    from .diagnostics import Severity

    report = LintReport()
    names = list(workloads) if workloads else list(list_workloads())
    bounds = _BoundsChecker(proven_lines)
    for name in names:
        workload = get_workload(name)
        saved_sites = DeviceContext.default_record_sites
        DeviceContext.default_record_sites = True
        try:
            graph = workload.lint_graph()
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            report.add(Diagnostic(
                rule="GR200", severity=Severity.ERROR,
                subject=workload.name,
                message=f"lint_graph() failed to capture: {exc}",
                category="graph"))
            continue
        finally:
            DeviceContext.default_record_sites = saved_sites
        if graph is None:
            report.notes.append(
                f"workload {workload.name!r} declares no lint graph")
            continue
        report.graphs.append(getattr(graph, "name", workload.name))
        report.extend(analyze_graph(graph))
        report.extend(bounds.check(graph))
        if not optimized:
            continue
        from ..graphopt import optimize_graph

        try:
            # check=False: the optimized graph is linted *here*, as a
            # first-class subject, so its diagnostics land in the report
            # rather than being folded into an exception.
            opt, _ = optimize_graph(graph, "all", check=False)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            report.add(Diagnostic(
                rule="GR200", severity=Severity.ERROR,
                subject=workload.name,
                message=f"graph-compiler pipeline failed on the lint "
                        f"capture: {exc}",
                category="graph"))
            continue
        report.graphs.append(getattr(opt, "name", f"{workload.name}+opt"))
        report.extend(analyze_graph(opt))
        report.extend(bounds.check(opt))
    return report


class _BoundsChecker:
    """Concretize every kernel op once; collect KV106 + proven lines.

    Deduplicates per ``(kernel, launch, shapes)`` so a kernel appearing in
    both the capture and its optimized rewrite is checked once, and a line
    counts as *proven* only when every observed concretization of it was
    in-bounds (one unproven launch removes it — discharge must hold for
    everything the graphs actually ship).
    """

    def __init__(self, proven_lines: Optional[Dict[str, Set[int]]]):
        self.proven = proven_lines
        self._seen: Set = set()

    def check(self, graph) -> List[Diagnostic]:
        from .regions import bounds_diagnostics, concretize_launch
        diags: List[Diagnostic] = []
        ops = getattr(graph, "_ops", None) or ()
        for op in ops:
            if getattr(op, "kind", "") != "kernel" or op_elided(op):
                continue
            meta = getattr(op, "meta", None) or {}
            kern, args, launch = (meta.get("kern"), meta.get("args"),
                                  meta.get("launch"))
            if kern is None or args is None or launch is None:
                continue
            try:
                lr = concretize_launch(kern, args, launch)
            except Exception:  # pragma: no cover - lint must not crash
                continue
            if lr is None:
                continue
            key = (lr.kernel, id(getattr(kern, "fn", kern)),
                   tuple(lr.proven_lines), tuple(lr.unproven_lines),
                   lr.oob)
            if key in self._seen:
                continue
            self._seen.add(key)
            diags.extend(bounds_diagnostics(kern, args, launch))
            if self.proven is not None:
                proved = self.proven.setdefault(lr.kernel, set())
                proved.update(lr.proven_lines)
                unproved = self.proven.setdefault(f"!{lr.kernel}", set())
                unproved.update(lr.unproven_lines)
        return diags


def discharge_proven(report: LintReport,
                     proven_lines: Dict[str, Set[int]]) -> int:
    """Drop KV103 diagnostics the region analysis proved in-bounds.

    A KV103 finding at ``kernel:line`` is discharged when every graph
    concretization of that kernel proved the line's accesses inside the
    buffer extents — the guard KV103 wanted syntactically is supplied
    semantically by the launch/shape arithmetic.  Returns the number of
    discharged diagnostics.
    """
    kept = []
    dropped = 0
    for d in report.diagnostics:
        if d.rule == RULE_UNGUARDED_INDEX and d.line is not None:
            proved = proven_lines.get(d.subject, set())
            unproved = proven_lines.get(f"!{d.subject}", set())
            if d.line in proved and d.line not in unproved:
                dropped += 1
                continue
        kept.append(d)
    report.diagnostics[:] = kept
    return dropped


def run_lint(workloads: Optional[Sequence[str]] = None, *,
             graphs: bool = True) -> LintReport:
    """The full ``repro lint`` pass: every kernel, then the workload graphs.

    *workloads* filters the graph population only — kernel verification is
    cheap (one memoised AST walk each) and always runs over the whole
    registry, so a narrowed lint cannot hide a broken kernel.
    """
    report = lint_kernels()
    if graphs:
        proven: Dict[str, Set[int]] = {}
        report.merge(lint_graphs(workloads, proven_lines=proven))
        discharged = discharge_proven(report, proven)
        if discharged:
            report.notes.append(
                f"{discharged} KV103 warning(s) discharged by region "
                f"analysis (access proven in-bounds under every shipped "
                f"launch)")
    from ..obs import metrics as _obs_metrics

    for diag in report.diagnostics:
        _obs_metrics.inc("lint_diagnostics_total", rule=diag.rule)
    return report
