"""Structured diagnostic records shared by the verifier and race detector.

Every finding is a :class:`Diagnostic`: a stable rule id, a severity, the
subject (kernel or operation name), and — when the analysis knows it — the
source file and line the finding anchors to.  :class:`LintReport` aggregates
diagnostics across kernels and graphs for the ``repro lint`` CLI and the CI
gate (which fails on any error-severity diagnostic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Diagnostic", "LintReport", "Severity"]


class Severity:
    """Diagnostic severities, ordered ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"
    ALL = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    ``rule`` is a stable identifier (``KV1xx`` for kernel-verifier rules,
    ``GR2xx`` for graph race-detector rules); ``subject`` names the kernel
    or device operation the finding is about; ``category`` separates kernel
    findings from graph findings in reports.
    """

    rule: str
    severity: str
    subject: str
    message: str
    source: str = ""
    line: Optional[int] = None
    category: str = "kernel"            # "kernel" | "graph"

    def __post_init__(self):
        if self.severity not in Severity.ALL:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {Severity.ALL}"
            )

    @property
    def location(self) -> str:
        """``file:line`` when known, else the subject name."""
        if self.source and self.line is not None:
            return f"{self.source}:{self.line}"
        return self.subject

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
            "source": self.source,
            "line": self.line,
            "category": self.category,
        }

    def __str__(self) -> str:
        loc = f"{self.source}:{self.line}: " if self.source and self.line \
            else ""
        return f"{loc}{self.severity} [{self.rule}] {self.subject}: {self.message}"


@dataclass
class LintReport:
    """Aggregated diagnostics plus per-subject bookkeeping for ``repro lint``."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: subjects analysed (kernels verified, graphs race-checked) — recorded
    #: even when clean, so "0 findings" is distinguishable from "0 subjects"
    kernels: List[str] = field(default_factory=list)
    graphs: List[str] = field(default_factory=list)
    #: free-form notes (e.g. "workload X declares no lint graph")
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------- mutation
    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def merge(self, other: "LintReport") -> "LintReport":
        self.diagnostics.extend(other.diagnostics)
        self.kernels.extend(other.kernels)
        self.graphs.extend(other.graphs)
        self.notes.extend(other.notes)
        return self

    # ------------------------------------------------------------- queries
    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity == Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity == Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was reported."""
        return not self.errors

    def rules(self) -> Tuple[str, ...]:
        """The distinct rule ids that fired, sorted (test helper)."""
        return tuple(sorted({d.rule for d in self.diagnostics}))

    def sorted_diagnostics(self) -> Tuple[Diagnostic, ...]:
        """Diagnostics in a run-independent order.

        Sorted by severity (errors first), rule id, site, then subject and
        message — so JSON output and CI asserts are stable regardless of
        registry or workload iteration order.
        """
        rank = {s: i for i, s in enumerate(Severity.ALL)}
        return tuple(sorted(
            self.diagnostics,
            key=lambda d: (rank.get(d.severity, len(rank)), d.rule,
                           d.source, d.line if d.line is not None else -1,
                           d.subject, d.message)))

    def rule_counts(self) -> Dict[str, int]:
        """Firing counts for every known rule (zero-filled catalog).

        Every rule in the :mod:`repro.analysis.rules` catalog appears with
        an explicit count — CI gates assert ``rules["KV106"] == 0`` without
        needing the rule to have fired.
        """
        from .rules import rule_catalog
        counts = {rule: 0 for rule in rule_catalog()}
        for d in self.diagnostics:
            counts[d.rule] = counts.get(d.rule, 0) + 1
        return counts

    # ----------------------------------------------------------- rendering
    def summary(self) -> Dict[str, object]:
        return {
            "kernels": len(self.kernels),
            "graphs": len(self.graphs),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": len(self.diagnostics),
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "diagnostics": [d.as_dict() for d in self.sorted_diagnostics()],
            "kernels": sorted(self.kernels),
            "graphs": sorted(self.graphs),
            "notes": list(self.notes),
            "rules": self.rule_counts(),
            "summary": self.summary(),
        }

    def render(self) -> str:
        lines = [str(d) for d in self.sorted_diagnostics()]
        lines.extend(f"note: {n}" for n in self.notes)
        s = self.summary()
        lines.append(
            f"{s['kernels']} kernel(s), {s['graphs']} graph(s) analysed: "
            f"{s['errors']} error(s), {s['warnings']} warning(s)"
        )
        return "\n".join(lines)
