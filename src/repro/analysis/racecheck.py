"""Happens-before race analysis over enqueued device operations.

The modelled-GPU analogue of compute-sanitizer's racecheck.  The input is
an ordered list of device operations — a captured
:class:`~repro.core.device.DeviceGraph`'s ops or a context's pending queue —
and the analysis rebuilds the ordering the runtime itself guarantees:

* **program order** within one stream (streams are FIFO), and
* **event edges**: an operation that waits on an event happens-after the
  latest ``record`` of that event preceding it in enqueue order (the same
  resolution rule ``DeviceGraph._compile`` uses).

Two operations on *different* streams with no happens-before path between
them run concurrently on the modelled device.  If one of them writes a
buffer the other touches, the replayed interleaving the runtime happens to
pick is the only thing standing between the program and a wrong answer —
that is rule ``GR201``.

Whole-buffer conflicts are refined by the symbolic region analysis
(:mod:`repro.analysis.regions`): when both sides' concretized access boxes
are exact, provably disjoint index sets are *not* a race and the pair is
suppressed; overlapping-but-not-identical boxes downgrade to the more
precise ``GR204``.  Inexact (⊤) regions keep the conservative ``GR201``
verdict, so region precision never hides a real race.

Rules
-----
``GR201`` cross-stream race — conflicting accesses (write/write or
read/write) to one buffer from unordered operations on different streams,
where the region analysis cannot prove the index sets disjoint (identical
or unanalyzable regions).

``GR204`` partial-overlap race — the region-precision form of ``GR201``:
both operations' access boxes are exact, they overlap without coinciding,
and the diagnostic names the exact conflicting index interval.  These are
the subtlest races (tile halos, off-by-one partitions), so the extra
precision goes straight into the message.

``GR202`` use-after-free — an operation whose buffer was freed before the
analysis ran (the op would raise at drain time; the diagnostic names the
enqueue site when the runtime captured one).

``GR203`` dead transfer — an H2D copy or memset whose buffer is never read
afterwards (no kernel consumes it, no D2H downloads it): the transfer's
modelled bandwidth cost buys nothing.  Warning severity.

The walk is duck-typed over the runtime's ``_Op`` records (``kind`` /
``stream`` / ``waits`` / ``event`` / ``buffers`` / ``meta``), so this
module never imports :mod:`repro.core.device` — the device layer can
lazily import *us* for ``ctx.capture(check=True)`` without a cycle.
Kernel operations that carry explicit ``reads`` / ``writes`` buffer sets
use them; otherwise access sets are derived from the captured argument
list (``mut=False`` tensors are read-only, ``mut=True`` tensors and bare
buffers conservatively read+write).

Graph-compiler provenance: ops tombstoned by a :mod:`repro.graphopt` pass
(``meta["elided"]`` with a ``meta["graphopt"]`` record) contribute no
replay step, so they are skipped as *subjects* of every rule and are
transparent to the happens-before chains (sound because the passes never
elide an op carrying event waits or records).  Their *reads* still count
when deciding whether a write is dead: a D2H download the optimizer
dropped must not re-flag the upload that fed it as a ``GR203`` dead
transfer — the upload was live in the program the user wrote.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, Severity

__all__ = [
    "RULE_CROSS_STREAM_RACE",
    "RULE_USE_AFTER_FREE",
    "RULE_DEAD_TRANSFER",
    "RULE_PARTIAL_OVERLAP",
    "analyze_graph",
    "analyze_ops",
    "op_accesses",
    "op_elided",
]

RULE_CROSS_STREAM_RACE = "GR201"
RULE_USE_AFTER_FREE = "GR202"
RULE_DEAD_TRANSFER = "GR203"
RULE_PARTIAL_OVERLAP = "GR204"

#: op kinds that only write their buffer
_WRITE_KINDS = ("h2d", "memset")
#: op kinds that only read their buffer
_READ_KINDS = ("d2h",)


def _is_buffer(obj) -> bool:
    return hasattr(obj, "freed") and hasattr(obj, "label") \
        and hasattr(obj, "count")


def _kernel_accesses(args: Sequence) -> Tuple[tuple, tuple]:
    """(reads, writes) derived from a captured kernel argument list."""
    reads: Dict[int, object] = {}
    writes: Dict[int, object] = {}
    for a in args:
        buf = getattr(a, "device_buffer", None)
        if buf is not None:
            reads[id(buf)] = buf
            if getattr(a, "mut", True):
                writes[id(buf)] = buf
        elif _is_buffer(a):
            reads[id(a)] = a
            writes[id(a)] = a
    return tuple(reads.values()), tuple(writes.values())


def _op_accesses(op) -> Tuple[tuple, tuple]:
    """(reads, writes) buffer sets of one operation."""
    reads = getattr(op, "reads", None)
    writes = getattr(op, "writes", None)
    if reads is not None or writes is not None:
        return tuple(reads or ()), tuple(writes or ())
    kind = getattr(op, "kind", "")
    buffers = tuple(getattr(op, "buffers", ()) or ())
    if kind in _WRITE_KINDS:
        return (), buffers
    if kind in _READ_KINDS:
        return buffers, ()
    if kind == "kernel":
        meta = getattr(op, "meta", None) or {}
        args = meta.get("args")
        if args is not None:
            return _kernel_accesses(args)
        return buffers, buffers
    return (), ()                       # "event" markers touch no memory


#: public alias — the graph optimizer shares this access derivation when
#: deciding elision/hoisting legality, so detector and compiler cannot
#: disagree about what an op touches
op_accesses = _op_accesses


def op_elided(op) -> bool:
    """True for an op tombstoned by a graph-compiler pass (provenance-tagged)."""
    return bool((getattr(op, "meta", None) or {}).get("elided"))


def _op_site(op) -> str:
    site = getattr(op, "site", None)
    return f" (enqueued at {site})" if site else ""


def _site_location(*ops) -> Tuple[str, Optional[int]]:
    """(source, line) from the first op carrying a recorded enqueue site."""
    for op in ops:
        site = getattr(op, "site", None)
        if not site:
            continue
        path, sep, lineno = str(site).rpartition(":")
        if sep and lineno.isdigit():
            return path, int(lineno)
        return str(site), None
    return "", None


def analyze_ops(ops: Sequence, *, subject: str = "<ops>",
                source: str = "",
                regions: bool = True) -> List[Diagnostic]:
    """Race-check an ordered device-operation list; returns diagnostics.

    *ops* is any sequence of ``_Op``-shaped records in enqueue order —
    enqueue order is a valid topological order of the stream/event DAG, so
    happens-before sets can be built in one forward pass.

    ``regions=False`` disables the region-precision refinement and reports
    every whole-buffer conflict as GR201 — the PR-7 behaviour, kept as the
    soundness baseline the property tests compare against.
    """
    diags: List[Diagnostic] = []
    n = len(ops)
    accesses = [_op_accesses(op) for op in ops]
    elided = [op_elided(op) for op in ops]

    # ---------------------------------------------------------------- GR202
    for op, (reads, writes), dead in zip(ops, accesses, elided):
        if dead:
            continue
        for buf in dict((id(b), b) for b in (*reads, *writes)).values():
            if getattr(buf, "freed", False):
                site_src, site_line = _site_location(op)
                diags.append(Diagnostic(
                    rule=RULE_USE_AFTER_FREE, severity=Severity.ERROR,
                    subject=f"{subject}:{op.name}",
                    message=f"{op.kind} operation {op.name!r} uses freed "
                            f"buffer {buf.label!r}{_op_site(op)}",
                    source=site_src or source, line=site_line,
                    category="graph"))

    # ------------------------------------------------- happens-before sets
    hb: List[Set[int]] = [set() for _ in range(n)]
    last_on_stream: Dict[str, int] = {}
    latest_record: Dict[int, int] = {}
    for i, op in enumerate(ops):
        if elided[i]:
            # Tombstones run nothing and (by pass construction) carry no
            # waits or event records — same-stream FIFO ordering flows
            # through them transitively.
            continue
        stream = getattr(getattr(op, "stream", None), "name", "default")
        preds: List[int] = []
        prev = last_on_stream.get(stream)
        if prev is not None:
            preds.append(prev)
        for ev in getattr(op, "waits", ()) or ():
            rec = latest_record.get(id(ev))
            if rec is not None:
                preds.append(rec)
        for p in preds:
            hb[i].add(p)
            hb[i] |= hb[p]
        last_on_stream[stream] = i
        ev = getattr(op, "event", None)
        if ev is not None:
            latest_record[id(ev)] = i

    # ---------------------------------------------------------------- GR201
    reported: Set[Tuple[str, str, str]] = set()
    for j in range(n):
        r_j, w_j = accesses[j]
        if elided[j] or not (r_j or w_j):
            continue
        stream_j = getattr(getattr(ops[j], "stream", None), "name", "default")
        for i in range(j):
            if elided[i]:
                continue                # tombstones execute nothing
            stream_i = getattr(getattr(ops[i], "stream", None), "name",
                               "default")
            if stream_i == stream_j or i in hb[j]:
                continue                # FIFO or an event edge orders them
            r_i, w_i = accesses[i]
            conflicts = {id(b): b for b in w_i
                         if any(b is o for o in (*r_j, *w_j))}
            conflicts.update((id(b), b) for b in w_j
                             if any(b is o for o in (*r_i, *w_i)))
            for buf in conflicts.values():
                key = (buf.label, ops[i].name, ops[j].name)
                if key in reported:
                    continue
                reported.add(key)
                overlap_txt = ""
                if regions:
                    verdict = _region_verdict(ops[i], ops[j], buf)
                    if verdict == "disjoint":
                        continue        # provably race-free index sets
                    if isinstance(verdict, tuple):
                        _, box, _shape = verdict
                        from .regions import box_text
                        overlap_txt = box_text(box)
                site_src, site_line = _site_location(ops[j], ops[i])
                if overlap_txt:
                    diags.append(Diagnostic(
                        rule=RULE_PARTIAL_OVERLAP, severity=Severity.ERROR,
                        subject=f"{subject}:{buf.label}",
                        message=f"{ops[i].kind} {ops[i].name!r} (stream "
                                f"{stream_i!r}) and {ops[j].kind} "
                                f"{ops[j].name!r} (stream {stream_j!r}) "
                                f"race on buffer {buf.label!r} over the "
                                f"partial index overlap {overlap_txt}; "
                                f"record an Event after the first and "
                                f"stream.wait() it before the second"
                                f"{_op_site(ops[j])}",
                        source=site_src or source, line=site_line,
                        category="graph"))
                    continue
                diags.append(Diagnostic(
                    rule=RULE_CROSS_STREAM_RACE, severity=Severity.ERROR,
                    subject=f"{subject}:{buf.label}",
                    message=f"{ops[i].kind} {ops[i].name!r} (stream "
                            f"{stream_i!r}) and {ops[j].kind} "
                            f"{ops[j].name!r} (stream {stream_j!r}) both "
                            f"touch buffer {buf.label!r} with no event "
                            f"edge between them; record an Event after "
                            f"the first and stream.wait() it before the "
                            f"second{_op_site(ops[j])}",
                    source=site_src or source, line=site_line,
                    category="graph"))

    # ---------------------------------------------------------------- GR203
    for i in range(n):
        op = ops[i]
        if op.kind not in _WRITE_KINDS or elided[i]:
            continue
        _, writes = accesses[i]
        for buf in writes:
            # Elided readers still count: a download the graph compiler
            # dropped proves the upload was live in the captured program,
            # so re-linting the optimized graph must not flag it.
            read_later = any(
                any(b is buf for b in accesses[j][0])
                for j in range(i + 1, n))
            if not read_later:
                site_src, site_line = _site_location(op)
                diags.append(Diagnostic(
                    rule=RULE_DEAD_TRANSFER, severity=Severity.WARNING,
                    subject=f"{subject}:{buf.label}",
                    message=f"{op.kind} {op.name!r} writes buffer "
                            f"{buf.label!r} which nothing reads afterwards "
                            f"(no kernel consumes it, no D2H downloads "
                            f"it); the transfer cost buys nothing"
                            f"{_op_site(op)}",
                    source=site_src or source, line=site_line,
                    category="graph"))
    return diags


def _region_verdict(op_a, op_b, buf):
    """Region refinement of one whole-buffer conflict (never raises).

    The analysis layer must not turn a lint run into a crash: any failure
    inside the region machinery falls back to the whole-buffer verdict.
    """
    try:
        from .regions import region_conflict
        return region_conflict(op_a, op_b, buf)
    except Exception:  # pragma: no cover - defensive
        return None


def analyze_graph(graph, *, regions: bool = True) -> List[Diagnostic]:
    """Race-check a captured :class:`DeviceGraph` (or anything op-shaped).

    Accepts the graph object itself (its recorded ``_ops`` are analysed)
    and names findings after the graph.
    """
    ops = getattr(graph, "_ops", None)
    if ops is None:
        ops = list(graph)
    name = getattr(graph, "name", "<graph>")
    return analyze_ops(ops, subject=name, source="", regions=regions)
