"""Rule catalog: ids and doc blocks for every static-analysis rule.

The verifier and race detector document each rule as a dedicated
paragraph in their module docstrings (``\\`\\`KVxxx\\`\\` …`` /
``\\`\\`GRxxx\\`\\` …``).  This module parses those paragraphs into a
catalog so ``repro lint --explain KV103`` prints the authoritative text
— the docstring *is* the documentation, there is no second copy to
drift — and so JSON reports can zero-fill a count for every known rule.
"""

from __future__ import annotations

import re
from typing import Dict, Optional

__all__ = ["rule_catalog", "rule_doc"]

_RULE_PARAGRAPH = re.compile(
    r"^(?:Rules\s+-+\s+)?``((?:KV|GR)\d{3})``\s*(.*)$", re.DOTALL)

#: rules documented outside the two analysis modules
_EXTRA_RULES = {
    "GR200": (
        "graph capture failure — a workload's lint graph could not be "
        "captured (the workload raised during ``lint_graph()``); the "
        "exception text is carried in the diagnostic message."
    ),
}

_catalog_cache: Optional[Dict[str, str]] = None


def _paragraphs(doc: str):
    for block in re.split(r"\n\s*\n", doc or ""):
        yield " ".join(line.strip() for line in block.strip().splitlines())


def rule_catalog() -> Dict[str, str]:
    """``{rule_id: doc text}`` for every documented rule, sorted by id."""
    global _catalog_cache
    if _catalog_cache is not None:
        return _catalog_cache
    from . import racecheck, verifier
    entries: Dict[str, str] = dict(_EXTRA_RULES)
    for module in (verifier, racecheck):
        for para in _paragraphs(module.__doc__):
            m = _RULE_PARAGRAPH.match(para)
            if m:
                entries[m.group(1)] = m.group(2).strip()
    _catalog_cache = dict(sorted(entries.items()))
    return _catalog_cache


def rule_doc(rule: str) -> Optional[str]:
    """Doc block of one rule id (case-insensitive); None when unknown."""
    return rule_catalog().get(rule.strip().upper())
