"""AST-based verification of ``@kernel`` bodies against the SIMT model.

The verifier parses a kernel's source with :mod:`ast` and walks it against a
static model of the intrinsic surface (:data:`repro.core.intrinsics.SIMT_MODEL`
plus the atomics from :mod:`repro.core.atomics`).  The walk is a taint
analysis over a three-point lattice:

``UNIFORM``
    The value is identical across all lanes of a lane set (constants,
    scalar parameters, ``block_dim`` / ``grid_dim`` components, results of
    the lane reductions ``any_lane`` / ``all_lanes``).
``GUARDED``
    The value varies per lane but has passed through a bounding construct —
    ``compress_lanes`` (dead lanes dropped), ``lane_where`` (clamp/select),
    a value loaded at a guarded index — so using it as a tensor index is
    proven in-bounds *given the guard*.
``LANE``
    Raw lane-derived data (``thread_idx`` / ``block_idx`` arithmetic) with
    no bound established.

Rules
-----
``KV100`` flag/inference mismatch — ``vector_safe=True`` declared but the
verifier cannot confirm the body is lockstep-safe (error), or the source is
unavailable for analysis (warning).

``KV101`` barrier divergence — a ``barrier()`` reachable only under a
lane-dependent branch, or a lane-guarded ``return`` that lets some lanes
skip a later barrier.

``KV102`` shared-memory race — write/write or read/write accesses to one
shared array within a single barrier-delimited phase whose index sets may
collide.  The tree-reduction idiom (mask ``lane < B``, read at ``lane + B``)
is recognised as disjoint.

``KV103`` unguarded index — a raw-``LANE`` index into a kernel-parameter
tensor with no dominating guard mentioning the index (shared arrays are
block-sized by construction and the masked accessors are predicated, so
both are exempt).

``KV104`` non-SIMT-safe construct — ``print``, ``global`` / ``nonlocal``
(mutating closures), ``yield``.

``KV105`` data-dependent ``while`` — a loop condition that varies per lane
without an ``any_lane`` / ``all_lanes`` reduction.

``KV106`` out-of-bounds access — the symbolic region analysis
(:mod:`repro.analysis.regions`) proves an access escapes a buffer's extent
under a concrete launch geometry: an unguarded endpoint-exact index whose
interval leaves ``[0, extent)``, or a guarded index whose entire interval
lies outside it.  Fired at graph-lint time, where the shipped launch and
buffer shapes are known; the same concretization discharges ``KV103``
warnings whose access is proven in-bounds under every observed launch.

Verification is memoised on the underlying function object, so
decoration-time checks (``@kernel(strict=True)``) and the launch-path
``kernel_vector_safe`` consultation pay the AST walk exactly once per
kernel body.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.atomics import ATOMIC_FUNCTIONS
from ..core.intrinsics import SIMT_MODEL
from .diagnostics import Diagnostic, Severity

__all__ = [
    "RULE_FLAG_MISMATCH",
    "RULE_BARRIER_DIVERGENCE",
    "RULE_SHARED_RACE",
    "RULE_UNGUARDED_INDEX",
    "RULE_SIMT_UNSAFE",
    "RULE_DATA_DEPENDENT_WHILE",
    "RULE_OOB_ACCESS",
    "VerifierResult",
    "infer_vector_safe",
    "lint_kernel",
    "verify_kernel",
]

RULE_FLAG_MISMATCH = "KV100"
RULE_BARRIER_DIVERGENCE = "KV101"
RULE_SHARED_RACE = "KV102"
RULE_UNGUARDED_INDEX = "KV103"
RULE_SIMT_UNSAFE = "KV104"
RULE_DATA_DEPENDENT_WHILE = "KV105"
RULE_OOB_ACCESS = "KV106"

# taint lattice
UNIFORM, GUARDED, LANE = 0, 1, 2

_LANE_SOURCES = frozenset(SIMT_MODEL["lane_index_sources"])
_UNIFORM_GEOMETRY = frozenset(SIMT_MODEL["uniform_geometry"])
_LANE_INDEX_CALLS = frozenset(SIMT_MODEL["lane_index_calls"])
_LANE_REDUCTIONS = frozenset(SIMT_MODEL["lane_reductions"])
_LANE_GUARDS = frozenset(SIMT_MODEL["lane_guards"])
_MASKED_ACCESSORS = frozenset(SIMT_MODEL["masked_accessors"])
_SHARED_ALLOCATORS = frozenset(SIMT_MODEL["shared_allocators"])
_BARRIER_CALLS = frozenset(SIMT_MODEL["barrier_calls"])
_ATOMIC_CALLS = frozenset(ATOMIC_FUNCTIONS)


@dataclass(frozen=True)
class VerifierResult:
    """Outcome of verifying one kernel body."""

    kernel: str
    source: str
    #: the hand-set ``vector_safe`` flag (None when never declared)
    declared: Optional[bool]
    #: the verifier's verdict (None when the source is unavailable)
    inferred: Optional[bool]
    #: why the body cannot run in lockstep (empty when inferred is True)
    reasons: Tuple[str, ...]
    #: body-rule findings (KV101-KV105); KV100 is added by :func:`lint_kernel`
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def confirmed(self) -> bool:
        """True when the verifier positively proved lockstep safety."""
        return self.inferred is True

    def as_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "source": self.source,
            "declared": self.declared,
            "inferred": self.inferred,
            "reasons": list(self.reasons),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }


class _SharedAccess:
    """One access to a block shared array, within one barrier phase."""

    __slots__ = ("array", "kind", "phase", "index_key", "index_taint",
                 "mask_key", "mask_node", "index_node", "line")

    def __init__(self, array, kind, phase, index_key, index_taint,
                 mask_key, mask_node, index_node, line):
        self.array = array
        self.kind = kind                # "r" | "w"
        self.phase = phase
        self.index_key = index_key
        self.index_taint = index_taint
        self.mask_key = mask_key        # None = unpredicated
        self.mask_node = mask_node      # resolved predicate expression
        self.index_node = index_node
        self.line = line


class _BodyAnalyzer:
    """Single-pass taint walk over one kernel body."""

    def __init__(self, name: str, source_file: str):
        self.name = name
        self.source_file = source_file
        self.env: Dict[str, int] = {}
        self.defs: Dict[str, Optional[ast.expr]] = {}
        self.params: Set[str] = set()
        self.shared: Set[str] = set()
        self.guards: List[Tuple[int, ast.expr]] = []
        self.phase = 0
        self.accesses: List[_SharedAccess] = []
        self.barrier_lines: List[int] = []
        self.lane_return_lines: List[int] = []
        self.diags: List[Diagnostic] = []
        self.reasons: List[str] = []

    # ------------------------------------------------------------- helpers
    def _diag(self, rule: str, line: Optional[int], message: str,
              severity: str = Severity.ERROR) -> None:
        self.diags.append(Diagnostic(
            rule=rule, severity=severity, subject=self.name, message=message,
            source=self.source_file, line=line, category="kernel"))

    def _reason(self, text: str) -> None:
        if text not in self.reasons:
            self.reasons.append(text)

    @staticmethod
    def _callee(node: ast.Call) -> str:
        f = node.func
        if isinstance(f, ast.Name):
            return f.id
        if isinstance(f, ast.Attribute):
            base = f.value
            if isinstance(base, ast.Name):
                return f"{base.id}.{f.attr}"
            return f.attr
        return ""

    def _resolve(self, node: ast.expr, depth: int = 6) -> ast.expr:
        """Follow simple ``name = expr`` definitions (for mask matching)."""
        while depth > 0 and isinstance(node, ast.Name):
            defn = self.defs.get(node.id)
            if defn is None:
                break
            node = defn
            depth -= 1
        return node

    @staticmethod
    def _key(node: Optional[ast.expr]) -> Optional[str]:
        return None if node is None else ast.dump(node)

    def _names(self, node: ast.expr) -> Set[str]:
        return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}

    def _guard_covers(self, index_node: ast.expr) -> bool:
        """True when a dominating guard mentions a name of the index expr."""
        idx_names = self._names(index_node)
        if not idx_names:
            return False
        for taint, test in self.guards:
            if taint == UNIFORM:
                continue
            if idx_names & self._names(test):
                return True
        return False

    def _innermost_lane_guard(self) -> Optional[ast.expr]:
        for taint, test in reversed(self.guards):
            if taint != UNIFORM:
                return test
        return None

    # ------------------------------------------------------ access records
    def _record_shared(self, array: str, kind: str, index_node: ast.expr,
                       mask_node: Optional[ast.expr], line: int) -> None:
        guard = mask_node if mask_node is not None \
            else self._innermost_lane_guard()
        resolved = None if guard is None else self._resolve(guard)
        self.accesses.append(_SharedAccess(
            array=array, kind=kind, phase=self.phase,
            index_key=self._key(index_node),
            index_taint=self._expr(index_node) if False else self._taint_of(index_node),
            mask_key=self._key(resolved), mask_node=resolved,
            index_node=index_node, line=line))

    def _taint_of(self, node: ast.expr) -> int:
        # taint without re-recording accesses: indices were already walked
        # by the caller, so a pure (side-effect-free) evaluation suffices
        return self._expr(node, record=False)

    def _check_tensor_index(self, base: str, index_node: ast.expr,
                            line: int, *, masked: bool) -> None:
        if masked:
            return
        taint = self._taint_of(index_node)
        if taint == LANE and not self._guard_covers(index_node):
            self._diag(
                RULE_UNGUARDED_INDEX, line,
                f"raw lane-derived index "
                f"{ast.unparse(index_node)!r} into tensor parameter "
                f"{base!r} with no dominating guard, clamp "
                f"(lane_where/compress_lanes) or mask")

    # ---------------------------------------------------------- expressions
    def _expr(self, node: Optional[ast.expr], record: bool = True) -> int:
        if node is None:
            return UNIFORM
        method = getattr(self, f"_expr_{type(node).__name__}", None)
        if method is not None:
            return method(node, record)
        # generic fallback: max taint over child expressions
        taint = UNIFORM
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                taint = max(taint, self._expr(child, record))
        return taint

    def _expr_Constant(self, node, record) -> int:
        return UNIFORM

    def _expr_Name(self, node, record) -> int:
        if node.id in _LANE_SOURCES:
            return LANE
        if node.id in _UNIFORM_GEOMETRY:
            return UNIFORM
        return self.env.get(node.id, UNIFORM)

    def _expr_Attribute(self, node, record) -> int:
        return self._expr(node.value, record)

    def _expr_BinOp(self, node, record) -> int:
        return max(self._expr(node.left, record),
                   self._expr(node.right, record))

    def _expr_UnaryOp(self, node, record) -> int:
        return self._expr(node.operand, record)

    def _expr_BoolOp(self, node, record) -> int:
        return max((self._expr(v, record) for v in node.values),
                   default=UNIFORM)

    def _expr_Compare(self, node, record) -> int:
        taint = self._expr(node.left, record)
        for comp in node.comparators:
            taint = max(taint, self._expr(comp, record))
        return taint

    def _expr_IfExp(self, node, record) -> int:
        test = self._expr(node.test, record)
        if test != UNIFORM and record:
            self._reason(
                f"lane-dependent conditional expression at line "
                f"{node.lineno} (use lane_where)")
        # the test guards both arms, exactly like an `if` statement
        self.guards.append((test, node.test))
        try:
            body = self._expr(node.body, record)
            orelse = self._expr(node.orelse, record)
        finally:
            self.guards.pop()
        return max(test, body, orelse)

    def _expr_Tuple(self, node, record) -> int:
        return max((self._expr(e, record) for e in node.elts),
                   default=UNIFORM)

    _expr_List = _expr_Tuple
    _expr_Set = _expr_Tuple

    def _expr_Subscript(self, node, record) -> int:
        index_taint = self._expr(node.slice, record)
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in self.shared:
                if record:
                    self._record_shared(base.id, "r", node.slice, None,
                                        node.lineno)
                return max(index_taint, GUARDED) if index_taint else UNIFORM
            if base.id in self.params:
                if record:
                    self._check_tensor_index(base.id, node.slice,
                                             node.lineno, masked=False)
                return index_taint
            # local container (list of per-pose values etc.)
            return max(index_taint, self.env.get(base.id, UNIFORM))
        return max(index_taint, self._expr(base, record))

    def _expr_Call(self, node, record) -> int:
        name = self._callee(node)
        short = name.rsplit(".", 1)[-1]
        args = node.args

        if short in _BARRIER_CALLS:
            if record:
                self._visit_barrier(node)
            return UNIFORM
        if short in _LANE_REDUCTIONS:
            for a in args:
                self._expr(a, record)
            return UNIFORM
        if short in _LANE_GUARDS:
            taint = max((self._expr(a, record) for a in args),
                        default=UNIFORM)
            return GUARDED if taint != UNIFORM else UNIFORM
        if short in _LANE_INDEX_CALLS:
            return LANE
        if short in _SHARED_ALLOCATORS:
            for a in args:
                self._expr(a, record)
            return UNIFORM
        if short in _MASKED_ACCESSORS and args:
            return self._visit_masked(short, node, record)
        if short in _ATOMIC_CALLS:
            return self._visit_atomic(node, record)
        if short == "print":
            if record:
                self._diag(
                    RULE_SIMT_UNSAFE, node.lineno,
                    "print() inside a kernel body is not SIMT-safe "
                    "(side effects are per-lane-set, not per-thread)")
            return UNIFORM

        taint = UNIFORM
        for a in args:
            taint = max(taint, self._expr(a, record))
        for kw in node.keywords:
            taint = max(taint, self._expr(kw.value, record))
        # an unknown call cannot *unguard* its inputs: bounded in, bounded out
        return min(taint, GUARDED) if taint == LANE and short not in (
            "range", "len", "int", "float", "abs", "min", "max") else taint

    # --------------------------------------------------- intrinsic visitors
    def _visit_barrier(self, node: ast.Call) -> None:
        self.barrier_lines.append(node.lineno)
        self.phase += 1
        guard = self._innermost_lane_guard()
        if guard is not None:
            self._diag(
                RULE_BARRIER_DIVERGENCE, node.lineno,
                f"barrier() is reachable only under the lane-dependent "
                f"branch {ast.unparse(guard)!r}; lanes that skip it "
                f"deadlock the block")

    def _visit_masked(self, short: str, node: ast.Call, record: bool) -> int:
        args = node.args
        target, index = args[0], args[1] if len(args) > 1 else None
        mask = None
        if short == "masked_gather":
            mask = args[2] if len(args) > 2 else None
            kind = "r"
            rest = args[3:]
        else:                           # masked_store(target, index, value, mask)
            mask = args[3] if len(args) > 3 else None
            kind = "w"
            rest = args[2:3]
        for extra in rest:
            self._expr(extra, record)
        if index is not None:
            self._expr(index, record)
        if mask is not None:
            self._expr(mask, record)
        if record and isinstance(target, ast.Name) and index is not None:
            if target.id in self.shared:
                self._record_shared(target.id, kind, index, mask, node.lineno)
            # parameter tensors: the access is predicated by construction
        return GUARDED

    def _visit_atomic(self, node: ast.Call, record: bool) -> int:
        args = node.args
        taint = UNIFORM
        for a in args[1:]:
            taint = max(taint, self._expr(a, record))
        if record and len(args) >= 3 and isinstance(args[0], ast.Name):
            base = args[0].id
            if base in self.params:
                self._check_tensor_index(base, args[1], node.lineno,
                                         masked=False)
            elif base in self.shared:
                self._record_shared(base, "w", args[1], None, node.lineno)
        return min(taint, GUARDED) if taint == LANE else taint

    # ----------------------------------------------------------- statements
    def _stmts(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is not None:
            method(node)
            return
        # generic: evaluate embedded expressions, walk nested bodies
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.stmt):
                self._stmt(child)

    def _assign_target(self, target: ast.expr, taint: int,
                       value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
            self.defs[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) \
                    and len(value.elts) == len(target.elts):
                for t, v in zip(target.elts, value.elts):
                    self._assign_target(t, self._taint_of(v), v)
            else:
                for t in target.elts:
                    self._assign_target(t, taint, None)
            return
        if isinstance(target, ast.Subscript):
            self._store_subscript(target)
            return
        # attribute / starred targets: nothing to track

    def _store_subscript(self, target: ast.Subscript,
                         also_read: bool = False) -> None:
        self._expr(target.slice)
        base = target.value
        if isinstance(base, ast.Name):
            if base.id in self.shared:
                self._record_shared(base.id, "w", target.slice, None,
                                    target.lineno)
                if also_read:
                    self._record_shared(base.id, "r", target.slice, None,
                                        target.lineno)
            elif base.id in self.params:
                self._check_tensor_index(base.id, target.slice,
                                         target.lineno, masked=False)
            return
        self._expr(base)

    def _stmt_Assign(self, node: ast.Assign) -> None:
        value_call = node.value if isinstance(node.value, ast.Call) else None
        if value_call is not None and \
                self._callee(value_call).rsplit(".", 1)[-1] in _SHARED_ALLOCATORS:
            for a in value_call.args:
                self._expr(a)
            for kw in value_call.keywords:
                self._expr(kw.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.shared.add(target.id)
                    self.env[target.id] = UNIFORM
                    self.defs[target.id] = None
            return
        taint = self._expr(node.value)
        for target in node.targets:
            self._assign_target(target, taint, node.value)

    def _stmt_AugAssign(self, node: ast.AugAssign) -> None:
        taint = self._expr(node.value)
        if isinstance(node.target, ast.Name):
            self.env[node.target.id] = max(
                taint, self.env.get(node.target.id, UNIFORM))
            self.defs[node.target.id] = None
        elif isinstance(node.target, ast.Subscript):
            self._store_subscript(node.target, also_read=True)

    def _stmt_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        taint = self._expr(node.value)
        self._assign_target(node.target, taint, node.value)

    def _stmt_Expr(self, node: ast.Expr) -> None:
        self._expr(node.value)

    def _stmt_If(self, node: ast.If) -> None:
        taint = self._expr(node.test)
        if taint != UNIFORM:
            self._reason(
                f"lane-dependent branch at line {node.lineno} "
                f"({ast.unparse(node.test)!r}); lockstep execution needs "
                f"any_lane/compress_lanes or lane_where")
        self.guards.append((taint, node.test))
        try:
            self._stmts(node.body)
            self._stmts(node.orelse)
        finally:
            self.guards.pop()

    def _stmt_While(self, node: ast.While) -> None:
        taint = self._expr(node.test)
        if taint != UNIFORM:
            self._diag(
                RULE_DATA_DEPENDENT_WHILE, node.lineno,
                f"while condition {ast.unparse(node.test)!r} varies per "
                f"lane; reduce it with any_lane/all_lanes so every lane "
                f"agrees on the trip count")
            self._reason(
                f"data-dependent while at line {node.lineno}")
        self.guards.append((taint, node.test))
        try:
            self._stmts(node.body)
            self._stmts(node.orelse)
        finally:
            self.guards.pop()

    def _stmt_For(self, node: ast.For) -> None:
        iter_taint = self._expr(node.iter)
        if iter_taint != UNIFORM:
            self._reason(
                f"lane-dependent iteration at line {node.lineno}")
        self._assign_target(node.target, iter_taint, None)
        self._stmts(node.body)
        self._stmts(node.orelse)

    def _stmt_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._expr(node.value)
        if self._innermost_lane_guard() is not None:
            self.lane_return_lines.append(node.lineno)

    def _stmt_Global(self, node: ast.Global) -> None:
        self._diag(
            RULE_SIMT_UNSAFE, node.lineno,
            f"global statement ({', '.join(node.names)}) mutates state "
            f"outside the kernel's lane-private scope")

    def _stmt_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._diag(
            RULE_SIMT_UNSAFE, node.lineno,
            f"nonlocal statement ({', '.join(node.names)}) mutates an "
            f"enclosing closure; kernel bodies must be lane-pure")

    def _stmt_FunctionDef(self, node) -> None:
        # nested helper definitions are opaque to the walk
        return

    _stmt_AsyncFunctionDef = _stmt_FunctionDef

    # -------------------------------------------------------- entry + rules
    def run(self, fndef: ast.FunctionDef) -> None:
        self.params = {a.arg for a in fndef.args.args}
        self.params.update(a.arg for a in fndef.args.posonlyargs)
        self.params.update(a.arg for a in fndef.args.kwonlyargs)
        for name in self.params:
            self.env[name] = UNIFORM
        for stmt in ast.walk(fndef):
            if isinstance(stmt, (ast.Yield, ast.YieldFrom)):
                self._diag(RULE_SIMT_UNSAFE, stmt.lineno,
                           "yield inside a kernel body (kernels are not "
                           "generators)")
                break
        self._stmts(fndef.body)
        self._check_divergent_returns()
        self._check_shared_races()

    def _check_divergent_returns(self) -> None:
        if not self.barrier_lines or not self.lane_return_lines:
            return
        last_barrier = max(self.barrier_lines)
        for line in self.lane_return_lines:
            if line < last_barrier:
                self._diag(
                    RULE_BARRIER_DIVERGENCE, line,
                    f"return under a lane-dependent guard lets some lanes "
                    f"skip the barrier at line {last_barrier}")

    # ----------------------------------------------------- shared-race pass
    @staticmethod
    def _disjoint_reduction(write: _SharedAccess,
                            read: _SharedAccess) -> bool:
        """The tree-reduction idiom: mask ``X < B``, write X, read X + B."""
        if write.mask_key is None or write.mask_key != read.mask_key:
            return False
        mask = write.mask_node
        if not (isinstance(mask, ast.Compare) and len(mask.ops) == 1
                and isinstance(mask.ops[0], (ast.Lt, ast.LtE))):
            return False
        x_key = ast.dump(mask.left)
        b_key = ast.dump(mask.comparators[0])
        if write.index_key != x_key:
            return False
        idx = read.index_node
        if not (isinstance(idx, ast.BinOp) and isinstance(idx.op, ast.Add)):
            return False
        operands = {ast.dump(idx.left), ast.dump(idx.right)}
        return operands == {x_key, b_key}

    def _check_shared_races(self) -> None:
        groups: Dict[Tuple[str, int], List[_SharedAccess]] = {}
        for acc in self.accesses:
            groups.setdefault((acc.array, acc.phase), []).append(acc)
        reported: Set[Tuple[str, int, int]] = set()
        for (array, phase), accs in groups.items():
            writes = [a for a in accs if a.kind == "w"]
            reads = [a for a in accs if a.kind == "r"]
            for w in writes:
                # all lanes storing through one uniform index, unpredicated
                if w.index_taint == UNIFORM and w.mask_key is None:
                    key = (array, w.line, -1)
                    if key not in reported:
                        reported.add(key)
                        self._diag(
                            RULE_SHARED_RACE, w.line,
                            f"every lane writes "
                            f"{array}[{ast.unparse(w.index_node)}] in the "
                            f"same barrier phase (write/write race); "
                            f"predicate the store or index it per lane")
                    continue
                for other in writes:
                    if other is w or other.line < w.line:
                        continue
                    if other.index_key == w.index_key \
                            and other.mask_key == w.mask_key:
                        continue
                    key = (array, w.line, other.line)
                    if key in reported:
                        continue
                    reported.add(key)
                    self._diag(
                        RULE_SHARED_RACE, other.line,
                        f"writes to {array!r} at distinct lane indices "
                        f"({ast.unparse(w.index_node)!r} vs "
                        f"{ast.unparse(other.index_node)!r}) in one "
                        f"barrier phase (write/write race); separate them "
                        f"with barrier()")
                for r in reads:
                    if r.index_key == w.index_key \
                            and r.mask_key == w.mask_key:
                        continue        # every lane touches its own slot
                    if self._disjoint_reduction(w, r):
                        continue
                    key = (array, w.line, r.line)
                    if key in reported:
                        continue
                    reported.add(key)
                    self._diag(
                        RULE_SHARED_RACE, r.line,
                        f"read of {array}[{ast.unparse(r.index_node)}] "
                        f"races the write at line {w.line} "
                        f"({array}[{ast.unparse(w.index_node)}]) in the "
                        f"same barrier phase; separate them with barrier()")


# --------------------------------------------------------------------------
# public entry points
# --------------------------------------------------------------------------

def _underlying_fn(kern):
    fn = getattr(kern, "fn", kern)
    return fn


def verify_kernel(kern) -> VerifierResult:
    """Verify a kernel (or plain callable) body; memoised on the function.

    Returns a :class:`VerifierResult` whose ``inferred`` field is the
    verifier's lockstep-safety verdict — ``None`` when the source is
    unavailable (``exec``-defined bodies, builtins), in which case no body
    rules run either.
    """
    fn = _underlying_fn(kern)
    cached = getattr(fn, "_repro_verify_result", None)
    if cached is not None:
        return cached

    name = getattr(kern, "name", None) or getattr(fn, "__name__", "<kernel>")
    declared = _declared_flag(kern, fn)
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        source_file = inspect.getsourcefile(fn) or ""
    except (OSError, TypeError):
        result = VerifierResult(kernel=name, source="", declared=declared,
                                inferred=None, reasons=(
                                    "source unavailable for analysis",),
                                diagnostics=())
        _cache(fn, result)
        return result

    try:
        tree = ast.parse(source)
    except SyntaxError:  # pragma: no cover - getsource returned a fragment
        result = VerifierResult(kernel=name, source=source_file,
                                declared=declared, inferred=None,
                                reasons=("source could not be parsed",),
                                diagnostics=())
        _cache(fn, result)
        return result

    offset = getattr(getattr(fn, "__code__", None), "co_firstlineno", 1) - 1
    if offset:
        ast.increment_lineno(tree, offset)
    fndef = next((n for n in tree.body
                  if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))),
                 None)
    if fndef is None:  # pragma: no cover - defensive
        result = VerifierResult(kernel=name, source=source_file,
                                declared=declared, inferred=None,
                                reasons=("no function definition found",),
                                diagnostics=())
        _cache(fn, result)
        return result

    analyzer = _BodyAnalyzer(name, source_file)
    analyzer.run(fndef)
    has_errors = any(d.severity == Severity.ERROR for d in analyzer.diags)
    inferred = not analyzer.reasons and not has_errors
    result = VerifierResult(kernel=name, source=source_file,
                            declared=declared, inferred=inferred,
                            reasons=tuple(analyzer.reasons),
                            diagnostics=tuple(analyzer.diags))
    _cache(fn, result)
    return result


def infer_vector_safe(kern) -> Optional[bool]:
    """The verifier's lockstep-safety verdict (None = source unavailable)."""
    return verify_kernel(kern).inferred


def lint_kernel(kern) -> List[Diagnostic]:
    """Body-rule diagnostics plus the declared-flag consistency check.

    A ``vector_safe=True`` declaration the verifier refutes is a KV100
    error; a declaration it cannot analyse at all is a KV100 warning.
    """
    result = verify_kernel(kern)
    diags = list(result.diagnostics)
    if result.declared:
        if result.inferred is False:
            reasons = "; ".join(result.reasons) or "body rules failed"
            diags.append(Diagnostic(
                rule=RULE_FLAG_MISMATCH, severity=Severity.ERROR,
                subject=result.kernel,
                message=f"declared vector_safe=True but the verifier "
                        f"cannot confirm lockstep safety: {reasons}",
                source=result.source, category="kernel"))
        elif result.inferred is None:
            diags.append(Diagnostic(
                rule=RULE_FLAG_MISMATCH, severity=Severity.WARNING,
                subject=result.kernel,
                message="declared vector_safe=True but the body source is "
                        "unavailable for verification",
                source=result.source, category="kernel"))
    return diags


def _declared_flag(kern, fn) -> Optional[bool]:
    declared = getattr(kern, "declared_vector_safe", None)
    if declared is not None:
        return declared
    if hasattr(fn, "_repro_vector_safe"):
        return bool(fn._repro_vector_safe)
    return None


def _cache(fn, result: VerifierResult) -> None:
    try:
        fn._repro_verify_result = result
    except (AttributeError, TypeError):  # pragma: no cover - builtins
        pass
