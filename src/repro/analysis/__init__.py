"""Static analysis over kernel ASTs and device graphs (``repro lint``).

The paper's central argument is that a compiler which *understands* the
kernel — its layout, parallelism and synchronisation structure — can prove
properties before anything runs.  This package is that layer for the
simulated substrate:

:mod:`~repro.analysis.verifier`
    Parses each ``@kernel`` body with :mod:`ast` and walks it against a
    model of the SIMT intrinsic surface (``thread_idx`` / ``barrier`` /
    ``shared_array`` / the lane helpers / atomics).  It *infers* whether a
    body is safe for lockstep (vectorized) execution instead of trusting
    the hand-set ``vector_safe`` flag, and reports barrier divergence,
    shared-memory races between barriers, unguarded lane-dependent tensor
    indexing and non-SIMT-safe Python constructs.

:mod:`~repro.analysis.racecheck`
    A happens-before analysis over enqueued device operations (a captured
    :class:`~repro.core.device.DeviceGraph` or a raw op list): conflicting
    buffer accesses on different streams with no event edge, use-after-free
    and dead (written-never-read) transfers — the modelled-GPU analogue of
    compute-sanitizer's racecheck.

:mod:`~repro.analysis.lint`
    Orchestration for the ``repro lint`` CLI and the CI gate: verify every
    registered kernel, capture each workload's lint graph and run it
    through the race detector, and render the findings as text or JSON.

Analysis runs at decoration time (``@kernel(strict=True)``), capture time
(``ctx.capture(check=True)``) or lint time — never on the hot launch /
replay path, so the unused-path overhead is zero.
"""

from .diagnostics import Diagnostic, LintReport, Severity
from .lint import lint_graphs, lint_kernels, run_lint, shipped_kernels
from .racecheck import analyze_graph, analyze_ops
from .verifier import VerifierResult, lint_kernel, verify_kernel

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "VerifierResult",
    "analyze_graph",
    "analyze_ops",
    "lint_graphs",
    "lint_kernel",
    "lint_kernels",
    "run_lint",
    "shipped_kernels",
    "verify_kernel",
]
