"""Static analysis over kernel ASTs and device graphs (``repro lint``).

The paper's central argument is that a compiler which *understands* the
kernel — its layout, parallelism and synchronisation structure — can prove
properties before anything runs.  This package is that layer for the
simulated substrate:

:mod:`~repro.analysis.verifier`
    Parses each ``@kernel`` body with :mod:`ast` and walks it against a
    model of the SIMT intrinsic surface (``thread_idx`` / ``barrier`` /
    ``shared_array`` / the lane helpers / atomics).  It *infers* whether a
    body is safe for lockstep (vectorized) execution instead of trusting
    the hand-set ``vector_safe`` flag, and reports barrier divergence,
    shared-memory races between barriers, unguarded lane-dependent tensor
    indexing and non-SIMT-safe Python constructs.

:mod:`~repro.analysis.racecheck`
    A happens-before analysis over enqueued device operations (a captured
    :class:`~repro.core.device.DeviceGraph` or a raw op list): conflicting
    buffer accesses on different streams with no event edge, use-after-free
    and dead (written-never-read) transfers — the modelled-GPU analogue of
    compute-sanitizer's racecheck.

:mod:`~repro.analysis.regions` / :mod:`~repro.analysis.symexpr`
    Symbolic access-region analysis: an abstract interpreter over kernel
    ASTs computes per-buffer-parameter read/write regions as affine
    interval expressions in the launch intrinsics, concretizable against
    an actual launch and buffer shapes.  Feeds region-precision race
    verdicts (``GR201`` suppression, ``GR204`` partial overlaps), proven
    out-of-bounds findings (``KV106``) and KV103 discharge, cover-set
    fusion legality for the graph compiler, and exact byte traffic for
    the tuning roofline.

:mod:`~repro.analysis.lint`
    Orchestration for the ``repro lint`` CLI and the CI gate: verify every
    registered kernel, capture each workload's lint graph and run it
    through the race detector, and render the findings as text or JSON.

:mod:`~repro.analysis.rules`
    The rule catalog: every ``KVxxx`` / ``GRxxx`` id with its doc block,
    parsed from the analysis module docstrings (``repro lint --explain``).

Analysis runs at decoration time (``@kernel(strict=True)``), capture time
(``ctx.capture(check=True)``) or lint time — never on the hot launch /
replay path, so the unused-path overhead is zero.
"""

from .diagnostics import Diagnostic, LintReport, Severity
from .lint import (discharge_proven, lint_graphs, lint_kernels, run_lint,
                   shipped_kernels)
from .racecheck import analyze_graph, analyze_ops
from .regions import (LaunchRegions, RegionSummary, TensorSpec,
                      bounds_diagnostics, concretize_launch, covers,
                      kernel_regions, launch_traffic, region_conflict)
from .rules import rule_catalog, rule_doc
from .symexpr import Interval, launch_env
from .verifier import VerifierResult, lint_kernel, verify_kernel

__all__ = [
    "Diagnostic",
    "Interval",
    "LaunchRegions",
    "LintReport",
    "RegionSummary",
    "Severity",
    "TensorSpec",
    "VerifierResult",
    "analyze_graph",
    "analyze_ops",
    "bounds_diagnostics",
    "concretize_launch",
    "covers",
    "discharge_proven",
    "kernel_regions",
    "launch_env",
    "launch_traffic",
    "lint_graphs",
    "lint_kernel",
    "lint_kernels",
    "region_conflict",
    "rule_catalog",
    "rule_doc",
    "run_lint",
    "shipped_kernels",
    "verify_kernel",
]
