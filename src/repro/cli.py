"""Command-line interface: ``python -m repro`` / ``repro-experiments``.

Subcommands
-----------
``list``
    List the available experiments (one per paper table/figure) and GPUs.
``run <ids...>``
    Run one or more experiments (or ``all``) and print their reports.
``info``
    Show the simulated hardware and backend registry.
``workloads``
    List the registered science workloads with their parameter schemas.
``bench <workload>``
    Run one workload through the unified Workload API and print (or export
    as JSON/markdown) its uniform result.  Results are memoised by their
    frozen request in the on-disk result cache (``.repro_cache/`` by
    default), so repeating an identical invocation is near-free;
    ``--no-cache`` bypasses it and ``--executor`` selects the
    functional-simulator mode.
``sweep <workload>``
    Run a parameter sweep (``--param L=16,32,64`` axes) through
    ``Sweep.run_workload`` with the resilience layer exposed: ``--retries``
    / ``--timeout-ms`` / ``--on-error`` wrap every configuration in the
    retry + degradation machinery, ``--checkpoint``/``--resume`` journal
    finished requests so an interrupted sweep picks up where it stopped,
    and ``--inject`` installs a deterministic fault plan for chaos runs.
``tune <workload>``
    Search the workload's launch space (block shapes, work-group sizes,
    fast-math) for one request and persist the winner in the tuning
    database (``.repro_tune/`` by default).  Candidates are pruned by the
    occupancy/roofline models before measurement; a repeated invocation is
    a database hit and runs no search.  ``bench --tuned`` then applies the
    stored winner.
``report``
    Regenerate experiment reports as one markdown document (the
    ``EXPERIMENTS.md`` the result modules reference), ending with the
    tuned-vs-untuned portability section (``--no-tuning`` skips it).
``lint``
    Static analysis over the kernel registry and the workload device
    graphs: the AST kernel verifier (vector-safety inference, barrier
    divergence, shared-memory races, unguarded indexing) plus the
    happens-before stream race detector on each workload's
    ``lint_graph()`` capture.  ``repro lint --all --json`` is the CI
    gate; exit 1 means at least one error-severity diagnostic.
``trace <workload>``
    Run one workload with the tracing collector installed and export a
    Chrome/Perfetto ``trace.json``: nested host spans (wall *and*
    modelled durations) over the per-stream modelled device timelines,
    plus the process-wide metrics snapshot.  Load the file in
    https://ui.perfetto.dev or ``chrome://tracing``; without
    ``--output``/``--json`` a per-span modelled-vs-wall summary is
    printed instead.  ``bench --trace PATH`` offers the same export for
    a full bench invocation.
``bench-compare``
    Guard the host-execution microbenchmarks against performance
    regressions: compare a pytest-benchmark export (running the benchmarks
    when none is supplied) against ``benchmarks/baseline.json`` and fail on
    any regression beyond the threshold.  ``--quick`` restricts the run to
    the fast executor/dispatch subset for the tier-1 pre-merge flow; the
    report ends with the compile/result cache hit counters.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import List, Optional

from . import __version__
from .backends import get_backend, list_backends
from .core.errors import ConfigurationError, ReproError
from .experiments import EXPERIMENTS, list_experiments, run_experiment
from .gpu import get_gpu, list_gpus

__all__ = ["main", "build_parser", "accepts_option"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the Mojo GPU science-"
                    "kernels paper on the simulated substrate.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run experiments and print their reports")
    run_p.add_argument("ids", nargs="+",
                       help="experiment ids (fig2..fig7, table2..table5) or 'all'")
    run_p.add_argument("--full", action="store_true",
                       help="run the full (non-quick) parameter sweeps")
    run_p.add_argument("--verify", action="store_true",
                       help="also run functional verification on the simulator")
    run_p.add_argument("--markdown", action="store_true",
                       help="emit markdown instead of plain text")

    sub.add_parser("info", help="show simulated GPUs and backends")

    wl_p = sub.add_parser("workloads",
                          help="list registered workloads and their "
                               "parameter schemas")
    wl_p.add_argument("--json", action="store_true",
                      help="emit the schemas as JSON")

    b_p = sub.add_parser(
        "bench",
        help="run one workload through the unified Workload API")
    b_p.add_argument("workload", help="registered workload name "
                                      "(see 'workloads')")
    b_p.add_argument("--gpu", default="h100", help="simulated GPU (default h100)")
    b_p.add_argument("--backend", default="mojo",
                     help="backend/toolchain (default mojo)")
    b_p.add_argument("--precision", default=None,
                     help="float32/float64 (default: the workload's)")
    b_p.add_argument("--param", action="append", default=[], metavar="K=V",
                     help="workload parameter override (repeatable)")
    b_p.add_argument("--repeats", type=int, default=5,
                     help="measurement repeats kept (default 5; ignored by "
                          "single-evaluation workloads — see 'workloads')")
    b_p.add_argument("--warmup", type=int, default=1,
                     help="warm-up runs discarded (default 1; same caveat "
                          "as --repeats)")
    b_p.add_argument("--fast-math", action="store_true",
                     help="enable the backend's fast-math lowering")
    b_p.add_argument("--no-verify", action="store_true",
                     help="skip functional verification")
    b_p.add_argument("--executor", default="auto",
                     choices=["auto", "vectorized", "sequential",
                              "cooperative", "lowered"],
                     help="functional-simulator mode for verification "
                          "launches (default auto: lockstep vectorized for "
                          "vector-safe kernels; lowered: NumPy-codegen "
                          "whole-array compilation with per-launch fallback "
                          "to auto)")
    b_p.add_argument("--optimize", default="none", metavar="PASSES",
                     help="graph-compiler passes applied to captured device "
                          "graphs: 'none' (default), 'all', or a "
                          "comma-separated subset of elide,fuse,hoist")
    b_p.add_argument("--streams", type=int, default=1, metavar="N",
                     help="device streams for the verification pipeline "
                          "(default 1; N>1 gives transfers/compute their own "
                          "modelled timeline lanes so independent transfers "
                          "overlap — numerics are identical)")
    b_p.add_argument("--tuned", action="store_true",
                     help="apply the tuning database's remembered launch "
                          "configuration for this request (tune='cached'; "
                          "a database miss runs untuned — use the 'tune' "
                          "command to search and persist a winner first)")
    b_p.add_argument("--tune-dir", default=None, metavar="PATH",
                     help="tuning-database location consulted by --tuned "
                          "(default .repro_tune/)")
    b_p.add_argument("--no-cache", action="store_true",
                     help="bypass the request-level result cache (use when "
                          "iterating on workload code: cached results — "
                          "including verification verdicts — assume the "
                          "code is unchanged within a release)")
    b_p.add_argument("--cache-dir", default=None, metavar="PATH",
                     help="on-disk result-cache location (default "
                          ".repro_cache/)")
    b_p.add_argument("--retries", type=int, default=0, metavar="N",
                     help="retry a failed run up to N times (exponential "
                          "backoff with seeded jitter) and degrade along "
                          "the executor/tuning fallback ladder (default 0: "
                          "fail fast)")
    b_p.add_argument("--timeout-ms", type=float, default=None, metavar="MS",
                     help="wall-clock deadline per attempt; an expired run "
                          "raises (or retries, with --retries)")
    b_p.add_argument("--inject", default=None, metavar="PLAN.json",
                     help="install a deterministic fault plan (JSON: seed + "
                          "rules) for this invocation — chaos testing; see "
                          "the README's resilience section for the format")
    b_p.add_argument("--trace", default=None, metavar="TRACE.json",
                     help="run under the tracing collector and write a "
                          "Chrome/Perfetto trace of this invocation to "
                          "PATH (bypasses the result cache: a cache hit "
                          "performs no device work worth tracing)")
    fmt = b_p.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="emit the uniform result schema as JSON")
    fmt.add_argument("--markdown", action="store_true",
                     help="emit a markdown table instead of plain text")

    sw_p = sub.add_parser(
        "sweep",
        help="run a workload over a cartesian parameter sweep, with "
             "optional retries, checkpointing and fault injection")
    sw_p.add_argument("workload", help="registered workload name "
                                       "(see 'workloads')")
    sw_p.add_argument("--gpu", default="h100",
                      help="simulated GPU (default h100)")
    sw_p.add_argument("--backend", default="mojo",
                      help="backend/toolchain (default mojo)")
    sw_p.add_argument("--precision", default=None,
                      help="float32/float64 (default: the workload's)")
    sw_p.add_argument("--param", action="append", default=[],
                      metavar="K=V1,V2,...",
                      help="sweep axis (repeatable): comma-separated values "
                           "form the cartesian product; a single value pins "
                           "the parameter; request fields (gpu, backend, "
                           "precision, executor, tune, ...) may be swept "
                           "too; tuple values use 'x' separators "
                           "(block_shape=512x1x1,8x4x4)")
    sw_p.add_argument("--repeats", type=int, default=5,
                      help="measurement repeats kept (default 5)")
    sw_p.add_argument("--warmup", type=int, default=1,
                      help="warm-up runs discarded (default 1)")
    sw_p.add_argument("--no-verify", action="store_true",
                      help="skip functional verification")
    sw_p.add_argument("--executor", default="auto",
                      choices=["auto", "vectorized", "sequential",
                               "cooperative", "lowered"],
                      help="functional-simulator mode (default auto)")
    sw_p.add_argument("--workers", type=int, default=1, metavar="N",
                      help="thread-pool width (default 1: sequential)")
    sw_p.add_argument("--no-cache", action="store_true",
                      help="bypass the request-level result cache")
    sw_p.add_argument("--cache-dir", default=None, metavar="PATH",
                      help="on-disk result-cache location (default "
                           ".repro_cache/)")
    sw_p.add_argument("--checkpoint", default=None, metavar="PATH",
                      help="journal every finished request to a JSON-lines "
                           "checkpoint file")
    sw_p.add_argument("--resume", action="store_true",
                      help="replay an existing checkpoint: completed "
                           "requests are served from the journal, not "
                           "re-run (without --resume the file is truncated)")
    sw_p.add_argument("--on-error", default="raise",
                      choices=["raise", "skip", "retry"],
                      help="failed-request handling: raise (default), skip "
                           "(record a FailureRecord and continue) or retry "
                           "(retry + degradation ladder, then record)")
    sw_p.add_argument("--retries", type=int, default=0, metavar="N",
                      help="retry each failed request up to N times "
                           "(implies the degradation ladder)")
    sw_p.add_argument("--timeout-ms", type=float, default=None, metavar="MS",
                      help="wall-clock deadline per attempt")
    sw_p.add_argument("--inject", default=None, metavar="PLAN.json",
                      help="install a deterministic fault plan for the "
                           "whole sweep (chaos testing)")
    sw_p.add_argument("--json", action="store_true",
                      help="emit results, failures and the resilience "
                           "summary as JSON")

    t_p = sub.add_parser(
        "tune",
        help="search a workload's launch space and persist the winner")
    t_p.add_argument("workload", help="registered workload name "
                                      "(see 'workloads')")
    t_p.add_argument("--gpu", default="h100", help="simulated GPU (default h100)")
    t_p.add_argument("--backend", default="mojo",
                     help="backend/toolchain (default mojo)")
    t_p.add_argument("--precision", default=None,
                     help="float32/float64 (default: the workload's)")
    t_p.add_argument("--param", action="append", default=[], metavar="K=V",
                     help="workload parameter override (repeatable); "
                          "overrides of tuned knobs only seed the baseline")
    t_p.add_argument("--budget", type=int, default=16,
                     help="maximum measured configurations, baseline "
                          "included (default 16)")
    t_p.add_argument("--strategy", default="auto",
                     choices=["auto", "exhaustive", "random"],
                     help="search strategy (default auto: exhaustive when "
                          "the pruned space fits the budget, seeded "
                          "random + hill-climb otherwise)")
    t_p.add_argument("--seed", type=int, default=2025,
                     help="RNG seed for the random strategy (default 2025)")
    t_p.add_argument("--no-prune", action="store_true",
                     help="skip the occupancy/roofline pruning pass and "
                          "consider every feasible candidate")
    t_p.add_argument("--force", action="store_true",
                     help="search even when the database already holds a "
                          "record for this problem")
    t_p.add_argument("--tune-dir", default=None, metavar="PATH",
                     help="tuning-database location (default .repro_tune/)")
    t_p.add_argument("--json", action="store_true",
                     help="emit the search outcome (or the database hit) "
                          "as JSON")

    rep_p = sub.add_parser(
        "report",
        help="render experiment reports as one markdown document")
    rep_p.add_argument("ids", nargs="*", default=[],
                       help="experiment ids (default: all)")
    rep_p.add_argument("--write", default=None, metavar="PATH",
                       help="write the document to PATH (e.g. EXPERIMENTS.md) "
                            "instead of stdout")
    rep_p.add_argument("--full", action="store_true",
                       help="run the full (non-quick) parameter sweeps")
    rep_p.add_argument("--no-tuning", action="store_true",
                       help="skip the tuned-vs-untuned portability section")
    rep_p.add_argument("--no-graphopt", action="store_true",
                       help="skip the graph-compiler speedup section")
    rep_p.add_argument("--no-obs", action="store_true",
                       help="skip the observability section (metrics "
                            "counters and per-span modelled-vs-wall "
                            "calibration errors)")

    lint_p = sub.add_parser(
        "lint",
        help="statically verify kernels and race-check workload graphs")
    lint_p.add_argument("workloads", nargs="*", default=[],
                        help="workload names whose lint graphs to race-check "
                             "(kernel verification always covers the whole "
                             "registry)")
    lint_p.add_argument("--all", action="store_true", dest="lint_all",
                        help="lint every registered workload graph (the "
                             "default when no workload is named; spelled out "
                             "for the CI gate)")
    lint_p.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    lint_p.add_argument("--no-graphs", action="store_true",
                        help="verify kernels only, skip the graph race check")
    lint_p.add_argument("--explain", default=None, metavar="RULE",
                        help="print the documentation block of one rule id "
                             "(e.g. KV103, GR204) and exit; exit 2 when the "
                             "rule is unknown")
    lint_p.add_argument("--max-warnings", type=int, default=None,
                        metavar="N",
                        help="fail (exit 1) when the report carries more "
                             "than N warning-severity diagnostics — errors "
                             "always fail regardless")

    g_p = sub.add_parser(
        "graph",
        help="run the graph compiler over a workload's captured device "
             "graph and report what the passes did")
    g_p.add_argument("workload", nargs="?", default=None,
                     help="registered workload name (see 'workloads')")
    g_p.add_argument("--all", action="store_true", dest="graph_all",
                     help="optimize every registered workload's graph")
    g_p.add_argument("--passes", default="all", metavar="PASSES",
                     help="pass pipeline: 'all' (default), 'none', or a "
                          "comma-separated subset of elide,fuse,hoist")
    g_p.add_argument("--bench", action="store_true",
                     help="additionally time unfused/fused graph replays "
                          "and vectorized/lowered kernel dispatch")
    g_p.add_argument("--repeats", type=int, default=20, metavar="N",
                     help="replay repeats per timing (min is reported; "
                          "default 20)")
    g_p.add_argument("--json", action="store_true",
                     help="emit the per-workload reports as JSON")
    g_p.add_argument("--output", default=None, metavar="PATH",
                     help="also write the JSON payload to PATH (e.g. "
                          "BENCH_graphopt.json with --bench)")

    tr_p = sub.add_parser(
        "trace",
        help="run one workload under the tracing collector and export a "
             "Chrome/Perfetto timeline")
    tr_p.add_argument("workload", help="registered workload name "
                                       "(see 'workloads')")
    tr_p.add_argument("--gpu", default="h100",
                      help="simulated GPU (default h100)")
    tr_p.add_argument("--backend", default="mojo",
                      help="backend/toolchain (default mojo)")
    tr_p.add_argument("--param", action="append", default=[], metavar="K=V",
                      help="workload parameter override (repeatable)")
    tr_p.add_argument("--executor", default="auto",
                      choices=["auto", "vectorized", "sequential",
                               "cooperative", "lowered"],
                      help="functional-simulator mode for verification "
                           "launches (default auto)")
    tr_p.add_argument("--optimize", default="none", metavar="PASSES",
                      help="graph-compiler passes applied to captured "
                           "device graphs ('none', 'all', or a subset of "
                           "elide,fuse,hoist) — optimized replays appear "
                           "as expanded graph slices on the timeline")
    tr_p.add_argument("--streams", type=int, default=1, metavar="N",
                      help="device streams (default 1); each stream is "
                           "its own timeline lane in the trace")
    tr_p.add_argument("--no-verify", action="store_true",
                      help="skip functional verification")
    tr_p.add_argument("--output", default=None, metavar="TRACE.json",
                      help="write the Chrome trace to PATH (load in "
                           "https://ui.perfetto.dev or chrome://tracing)")
    tr_p.add_argument("--json", action="store_true",
                      help="print the Chrome trace JSON to stdout instead "
                           "of the span summary")

    bench_p = sub.add_parser(
        "bench-compare",
        help="compare host-execution benchmarks against the stored baseline")
    bench_p.add_argument("--baseline", default=None,
                         help="baseline JSON (default benchmarks/baseline.json)")
    bench_p.add_argument("--current", default=None,
                         help="existing pytest-benchmark JSON export to check; "
                              "omitted: run the benchmarks now")
    bench_p.add_argument("--threshold", type=float, default=None,
                         help="failure factor (default 2.0: fail when a "
                              "benchmark is more than 2x slower)")
    bench_p.add_argument("--update", action="store_true",
                         help="write the measured stats as the new baseline "
                              "instead of failing on regressions")
    bench_p.add_argument("--quick", action="store_true",
                         help="run only the fast benchmark subset (the "
                              "executor/dispatch microbenchmarks) — suitable "
                              "for the tier-1 pre-merge flow; baseline "
                              "entries not exercised are reported as "
                              "'missing' without failing")
    return parser


def _cmd_lint(args) -> int:
    """``repro lint``: kernel verifier + graph race detector, one report.

    Exit 0 when clean (warnings allowed), 1 on any error-severity
    diagnostic — that asymmetry is the CI contract: warnings surface in
    the report without blocking a merge.  ``--max-warnings N`` tightens
    it: more than N warnings also fail.  ``--explain RULE`` prints one
    rule's documentation block (sourced from the analysis module
    docstrings) and exits without linting anything.
    """
    from .analysis import run_lint

    if args.explain is not None:
        from .analysis.rules import rule_doc

        doc = rule_doc(args.explain)
        if doc is None:
            print(f"lint: unknown rule {args.explain!r} (see 'repro lint "
                  f"--all --json' for the catalog)", file=sys.stderr)
            return 2
        print(f"{args.explain.strip().upper()}")
        print(doc)
        return 0

    names = None if (args.lint_all or not args.workloads) else args.workloads
    report = run_lint(names, graphs=not args.no_graphs)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    if not report.ok:
        return 1
    if args.max_warnings is not None:
        warnings = sum(1 for d in report.diagnostics
                       if d.severity == "warning")
        if warnings > args.max_warnings:
            print(f"lint: {warnings} warning(s) exceed --max-warnings "
                  f"{args.max_warnings}", file=sys.stderr)
            return 1
    return 0


def _graph_bench(workload, passes: str, repeats: int) -> dict:
    """Best-of-*repeats* replay timings for one workload's captured graph.

    ``unfused_replay_s``/``fused_replay_s`` replay the lint capture before
    and after the requested pass pipeline; ``vectorized_replay_s``/
    ``lowered_replay_s`` replay executor-mode variants of the tuning probe
    (absent for workloads that declare no request-shaped probe).
    """
    import time

    from .graphopt import optimize_graph

    def best(fn) -> float:
        fn()                                    # warm caches/codegen
        samples = []
        for _ in range(max(repeats, 1)):
            t0 = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - t0)
        return min(samples)

    bench: dict = {}
    graph = workload.lint_graph()
    if graph is not None:
        optimized, _ = optimize_graph(graph, passes)
        bench["unfused_replay_s"] = best(graph.replay)
        bench["fused_replay_s"] = best(optimized.replay)
    for mode, key in (("vectorized", "vectorized_replay_s"),
                      ("lowered", "lowered_replay_s")):
        probe = workload.tuning_probe(workload.make_request(executor=mode))
        if probe is None:
            continue
        bench[key] = best(probe.replay)
    return bench


def _cmd_graph(args) -> int:
    """``repro graph``: run the pass pipeline and show what it did.

    Exit 0 when every optimized graph race-checks clean (the
    graph-compiler contract), 1 otherwise, 2 on configuration errors —
    matching the lint/bench exit conventions.
    """
    from .analysis.diagnostics import Severity
    from .analysis.racecheck import analyze_graph, op_elided
    from .graphopt import lowering_report, optimize_graph, parse_passes
    from .workloads import get_workload, list_workloads

    if args.graph_all and args.workload:
        raise ConfigurationError("name one workload or pass --all, not both")
    if not args.graph_all and not args.workload:
        raise ConfigurationError("name a workload or pass --all")
    passes = parse_passes(args.passes)          # validates pass names early
    names = list(list_workloads()) if args.graph_all else [args.workload]

    entries = []
    all_clean = True
    for name in names:
        workload = get_workload(name)
        graph = workload.lint_graph()
        if graph is None:
            entries.append({"workload": name, "graph": None,
                            "note": "declares no lint graph"})
            continue
        optimized, report = optimize_graph(graph, args.passes)
        diags = analyze_graph(optimized)
        clean = not any(d.severity == Severity.ERROR for d in diags)
        all_clean = all_clean and clean
        lowering = []
        for op in optimized.ops:
            meta = op.meta or {}
            if op.kind != "kernel" or op_elided(op) or "kern" not in meta:
                continue
            lowering.append(lowering_report(meta["kern"], meta["args"],
                                            meta["launch"]))
        entry = {"workload": name, **report.as_dict(),
                 "lint_clean": clean,
                 "lint_diagnostics": [d.as_dict() for d in diags],
                 "lowering": lowering}
        if args.bench:
            entry["bench"] = _graph_bench(workload, args.passes,
                                          args.repeats)
        entries.append(entry)

    payload = {"schema": "repro.graphopt-report/v1",
               "passes": list(passes), "graphs": entries}
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=str)
            fh.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
        return 0 if all_clean else 1

    for entry in entries:
        if entry.get("graph") is None:
            print(f"{entry['workload']}: {entry['note']}")
            continue
        print(f"{entry['graph']} -> {entry['optimized']} "
              f"(passes: {', '.join(entry['passes']) or 'none'})")
        print(f"  ops {entry['ops_before']} -> {entry['ops_after']}, "
              f"kernels {entry['kernels_before']} -> "
              f"{entry['kernels_after']}, modelled makespan "
              f"{entry['makespan_before_ms']:.4f} -> "
              f"{entry['makespan_after_ms']:.4f} ms")
        for group in entry["fused"]:
            print(f"  fused: {' + '.join(group['parts'])} -> "
                  f"{group['name']}")
        for victim in entry["elided"]:
            print(f"  elided: {victim['kind']} {victim['name']!r} "
                  f"({victim['action']})")
        for label in entry["pinned"]:
            print(f"  pinned: {label}")
        for low in entry["lowering"]:
            status = ("lowered to NumPy slicing" if low["lowered"]
                      else f"not lowered ({low['reason']})")
            print(f"  {low['kernel']}: {status}")
        print(f"  optimized graph lint: "
              f"{'clean' if entry['lint_clean'] else 'ERRORS'}")
        bench = entry.get("bench")
        if bench:
            for key, value in bench.items():
                print(f"  {key}: {value * 1e6:.1f} us")
    if args.output:
        print(f"wrote JSON report to {args.output}")
    return 0 if all_clean else 1


def _cmd_list() -> int:
    print("experiments:")
    for key in list_experiments():
        print(f"  {key:8s} {EXPERIMENTS[key].DESCRIPTION}")
    print("\ngpus:     " + ", ".join(list_gpus()))
    print("backends: " + ", ".join(list_backends()))
    return 0


def _cmd_info() -> int:
    print("Simulated GPUs (paper Table 1):")
    for name in list_gpus():
        spec = get_gpu(name)
        print(f"  {name:8s} {spec.full_name}: {spec.mem_bw_gbs:.0f} GB/s, "
              f"{spec.fp32_tflops} FP32 / {spec.fp64_tflops} FP64 TFLOP/s, "
              f"{spec.sm_count} SMs")
    print("\nBackends:")
    for name in list_backends():
        be = get_backend(name)
        print(f"  {name:8s} {be.display_name}: vendors={be.supported_vendors}, "
              f"fast-math={'yes' if be.fast_math_available else 'no'}, "
              f"portable={'yes' if be.portable else 'no'}")
    return 0


def accepts_option(fn, name: str) -> bool:
    """True when *fn* can receive keyword argument *name*.

    Inspects the signature rather than ``fn.__code__.co_varnames`` so
    wrapped functions (``functools.wraps``) and ``**kwargs``-taking runners
    are detected correctly.
    """
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins without introspectable sigs
        return False
    if name in parameters:
        kind = parameters[name].kind
        return kind not in (inspect.Parameter.VAR_POSITIONAL,
                            inspect.Parameter.POSITIONAL_ONLY)
    return any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in parameters.values())


def _cmd_run(ids: List[str], *, full: bool, verify: bool, markdown: bool) -> int:
    wanted = list_experiments() if any(i.lower() == "all" for i in ids) else ids
    status = 0
    for experiment_id in wanted:
        options = {"quick": not full}
        module = EXPERIMENTS.get(experiment_id.lower())
        if module is None:
            print(f"unknown experiment {experiment_id!r}; available: "
                  f"{', '.join(list_experiments())}", file=sys.stderr)
            return 2
        if verify and accepts_option(module.run, "verify"):
            options["verify"] = True
        result = run_experiment(experiment_id, **options)
        print(result.to_markdown() if markdown else result.to_text())
        print()
        if not result.all_passed:
            status = 1
    return status


def _cmd_workloads(*, as_json: bool) -> int:
    from .workloads import get_workload, list_workloads

    schemas = [get_workload(name).describe() for name in list_workloads()]
    if as_json:
        print(json.dumps(schemas, indent=2, default=str))
        return 0
    print("workloads:")
    for schema in schemas:
        print(f"  {schema['name']:12s} {schema['description']}")
        print(f"  {'':12s} primary metric: {schema['primary_metric']} "
              f"[{schema['primary_unit']}], precisions: "
              f"{'/'.join(schema['precisions'])}, "
              f"sampling: {schema['sampling']}")
        for param in schema["params"]:
            extra = ""
            if "choices" in param:
                extra = f" choices={param['choices']}"
            if "minimum" in param:
                extra += f" min={param['minimum']}"
            print(f"  {'':12s}   --param {param['name']}="
                  f"{param['default']} ({param['type']}){extra}  "
                  f"{param['description']}")
    return 0


def _parse_param_overrides(pairs: List[str]) -> dict:
    params = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ConfigurationError(
                f"--param expects K=V, got {pair!r}")
        params[key] = value
    return params


def _resilient_runner(workload, retries: int, timeout_ms):
    """``Workload.run``, or its retry/deadline/degradation wrapper.

    Shared by ``bench`` and ``sweep``: ``--retries 0`` with no timeout is
    exactly the plain run path (no wrapper, no resilience provenance).
    """
    if retries <= 0 and timeout_ms is None:
        return workload.run, None
    from .resilience import RetryPolicy, run_resilient

    retry = RetryPolicy(max_attempts=retries + 1) if retries > 0 else None

    def runner(request):
        return run_resilient(workload, request, retry=retry,
                             timeout_ms=timeout_ms)

    return runner, retry


def _inject_scope(plan_path):
    """Context manager installing a fault plan from a JSON file (or a no-op)."""
    import contextlib

    if plan_path is None:
        return contextlib.nullcontext()
    from .resilience import FaultPlan, install_fault_plan

    return install_fault_plan(FaultPlan.load(plan_path))


def _cmd_bench(args) -> int:
    from .harness.results import ResultTable
    from .harness.runner import MeasurementProtocol
    from .workloads import get_workload
    from .workloads.cache import DEFAULT_CACHE_DIR, ResultCache, run_cached

    if args.tune_dir and not args.tuned:
        raise ConfigurationError("--tune-dir only applies with --tuned")
    if args.tuned and args.tune_dir:
        from .tuning import configure_tuning_db

        configure_tuning_db(disk_dir=args.tune_dir)
    workload = get_workload(args.workload)
    request = workload.make_request(
        gpu=args.gpu, backend=args.backend, precision=args.precision,
        params=_parse_param_overrides(args.param),
        protocol=MeasurementProtocol(warmup=args.warmup,
                                     repeats=args.repeats),
        fast_math=args.fast_math, verify=not args.no_verify,
        executor=args.executor, streams=args.streams,
        tune="cached" if args.tuned else "off",
        optimize=args.optimize,
    )
    runner, _ = _resilient_runner(workload, args.retries, args.timeout_ms)
    cache_note = "disabled (--no-cache)"
    with _inject_scope(args.inject):
        if args.trace:
            from .obs import (TraceCollector, install_trace_collector,
                              snapshot, write_chrome_trace)

            # A result-cache hit replays a stored payload without any
            # device activity, so tracing always runs the workload.
            collector = TraceCollector()
            with install_trace_collector(collector):
                result = runner(request)
            write_chrome_trace(args.trace, collector,
                               metrics_snapshot=snapshot())
            cache_note = "bypassed (--trace)"
        elif args.no_cache:
            result = runner(request)
        elif args.tuned:
            # Tuned results depend on the mutable tuning database, so the
            # request-level result cache does not memoise them (run_cached).
            result = run_cached(request, workload=workload, runner=runner)
            cache_note = "bypassed (tuned request)"
        else:
            # A disk-backed cache keyed by the frozen request makes repeated
            # identical bench invocations near-free across processes.  The
            # cache object is fresh per invocation, so the only possible
            # outcomes are a disk hit or a miss that populates the store.
            cache = ResultCache(disk_dir=args.cache_dir or DEFAULT_CACHE_DIR)
            result = run_cached(request, cache=cache, workload=workload,
                                runner=runner)
            cache_note = ("hit (disk)" if cache.info()["disk_hits"]
                          else "miss (stored)")

    table = ResultTable(columns=list(result.ROW_COLUMNS),
                        title=f"{workload.name} on {request.gpu} / "
                              f"{request.backend}")
    table.add_row(**result.to_row())

    if args.json:
        payload = result.as_dict()
        payload["table"] = table.as_dict()
        print(json.dumps(payload, indent=2, default=str))
    elif args.markdown:
        print(table.to_markdown())
    else:
        print(table.to_text())
        print()
        print("metrics:")
        for name, value in result.metrics.items():
            print(f"  {name}: {value:,.4g}")
        if workload.sampling == "single-evaluation":
            print("sampling: single model evaluation "
                  "(--repeats/--warmup do not apply)")
        v = result.verification
        if v.ran:
            err = ("-" if v.max_rel_error is None
                   else f"{v.max_rel_error:.3e}")
            status = "passed" if v.passed else f"FAILED ({v.detail})"
            print(f"verification: {status}, max rel error {err}")
        else:
            print("verification: skipped (--no-verify)")
        tuning = result.provenance.get("tuning")
        if tuning is not None:
            if tuning.get("applied"):
                knobs = {**tuning["config"]["params"],
                         **tuning["config"]["fields"]}
                applied = " ".join(f"{k}={v}" for k, v in knobs.items())
                print(f"tuning: applied {applied} "
                      f"({tuning['speedup']:.2f}x over untuned)")
            else:
                print(f"tuning: not applied ({tuning.get('reason', '?')}) — "
                      "run 'repro tune' to search and persist a winner")
        resilience = result.provenance.get("resilience")
        if resilience is not None:
            ran = resilience["ran"]
            note = f"{resilience['attempts']} attempt(s)"
            if resilience["degraded"]:
                note += (f", degraded to executor={ran['executor']} "
                         f"tune={ran['tune']}")
            print(f"resilience: {note}")
        print(f"result cache: {cache_note}")
        if args.trace:
            print(f"trace: wrote {args.trace} "
                  "(load in https://ui.perfetto.dev or chrome://tracing)")
    return 0 if (not result.verification.ran
                 or result.verification.passed) else 1


def _parse_sweep_params(pairs: List[str]) -> dict:
    """``K=V1,V2,...`` pairs into sweep axes (singletons pin a parameter).

    Tuple-valued entries use ``x`` separators (``block_shape=512x1x1``) so
    the comma stays free to separate sweep values; they are rewritten to
    the comma form :meth:`ParamSpec.coerce` expects.
    """
    import re

    axes: dict = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key or not value:
            raise ConfigurationError(
                f"--param expects K=V1,V2,..., got {pair!r}")
        values: List[object] = []
        for item in value.split(","):
            item = item.strip()
            if re.fullmatch(r"\d+(x\d+)+", item):
                item = item.replace("x", ",")
            values.append(item)
        axes[key] = values
    return axes


def _cmd_sweep(args) -> int:
    from .harness.results import ResultTable
    from .harness.runner import MeasurementProtocol
    from .harness.sweep import sweep as make_sweep
    from .resilience import RetryPolicy
    from .workloads import get_workload
    from .workloads.cache import DEFAULT_CACHE_DIR, configure_result_cache

    workload = get_workload(args.workload)
    axes = _parse_sweep_params(args.param)
    if not axes:
        raise ConfigurationError(
            "sweep needs at least one --param axis (K=V1,V2,...)")
    s = make_sweep(**axes)

    if args.no_cache:
        cache = False
    else:
        cache = True
        configure_result_cache(disk=True,
                               disk_dir=args.cache_dir or DEFAULT_CACHE_DIR)
    base = dict(
        gpu=args.gpu, backend=args.backend, precision=args.precision,
        verify=not args.no_verify, executor=args.executor,
        protocol=MeasurementProtocol(warmup=args.warmup,
                                     repeats=args.repeats),
    )
    # axes may sweep request fields; drop the fixed value for those keys
    for key in list(base):
        if key in axes:
            del base[key]
    retry = RetryPolicy(max_attempts=args.retries + 1) if args.retries > 0 \
        else None
    with _inject_scope(args.inject) as injector:
        results = s.run_workload(
            workload, workers=args.workers if args.workers > 1 else None,
            cache=cache, checkpoint=args.checkpoint, resume=args.resume,
            on_error=args.on_error, retry=retry, timeout_ms=args.timeout_ms,
            **base)

    completed = [r for r in results if getattr(r, "ok", True)]
    failures = [r for r in results if not getattr(r, "ok", True)]
    retried = sum(1 for r in completed
                  if r.provenance.get("resilience", {}).get("retried"))
    degraded = sum(1 for r in completed
                   if r.provenance.get("resilience", {}).get("degraded"))
    verify_failed = sum(1 for r in completed
                        if r.verification.ran and not r.verification.passed)
    summary = {
        "configurations": len(results),
        "completed": len(completed),
        "failures": len(failures),
        "retried": retried,
        "degraded": degraded,
        "verification_failures": verify_failed,
    }
    if injector is not None:
        summary["faults"] = injector.stats()

    if args.json:
        print(json.dumps({
            "workload": workload.name,
            "summary": summary,
            "results": [r.as_dict() for r in completed],
            "failures": [f.as_dict() for f in failures],
        }, indent=2, default=str))
    else:
        if completed:
            table = ResultTable(columns=list(completed[0].ROW_COLUMNS),
                                title=f"{workload.name} sweep "
                                      f"({len(results)} configuration(s))")
            for r in completed:
                table.add_row(**r.to_row())
            print(table.to_text())
        for f in failures:
            print(f"FAILED [{f.stage}] {f.request.get('params')}: "
                  f"{f.error_type}: {f.message}")
        notes = [f"{len(completed)}/{len(results)} completed"]
        if retried:
            notes.append(f"{retried} retried")
        if degraded:
            notes.append(f"{degraded} degraded")
        if verify_failed:
            notes.append(f"{verify_failed} failed verification")
        if injector is not None:
            notes.append(f"{injector.stats()['total_fired']} fault(s) "
                         "injected")
        if args.checkpoint:
            notes.append(f"checkpoint {args.checkpoint}")
        print("sweep: " + ", ".join(notes))
    return 0 if not failures and not verify_failed else 1


def _cmd_tune(args) -> int:
    from .tuning import DEFAULT_TUNE_DIR, Tuner, TuningDB
    from .workloads import get_workload

    workload = get_workload(args.workload)
    request = workload.make_request(
        gpu=args.gpu, backend=args.backend, precision=args.precision,
        params=_parse_param_overrides(args.param), verify=False,
    )
    space = workload.tuning_space(request)
    if space is None:
        print(f"tune: workload {workload.name!r} declares no tuning space",
              file=sys.stderr)
        return 2
    db = TuningDB(disk_dir=args.tune_dir or DEFAULT_TUNE_DIR)
    key = db.key_for(request, space)

    record = None if args.force else db.get(request, space)
    if record is not None:
        # Database hit: the problem is already tuned, no search runs.
        if args.json:
            print(json.dumps({"source": "db-hit", "key": key,
                              "record": record.as_dict()},
                             indent=2, default=str))
        else:
            print(f"tuning db: hit for {workload.name} on {request.gpu}/"
                  f"{request.backend} (key {key}) — no search")
            print(f"  best: {record.config.label()}")
            print(f"  measured {record.score_ms:.4g} ms vs untuned "
                  f"{record.baseline_ms:.4g} ms "
                  f"({record.speedup:.2f}x speedup)")
            print(f"  found by {record.strategy} search, budget "
                  f"{record.budget}, {record.measured} measured of "
                  f"{record.space_size} candidates ({record.pruned} pruned)")
        return 0

    outcome = Tuner(workload, request, space=space, db=db,
                    budget=args.budget, strategy=args.strategy,
                    seed=args.seed, prune=not args.no_prune).search()
    if outcome.record is None:
        print("tune: no candidate survived measurement", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"source": "search", "key": outcome.db_key,
                          **outcome.as_dict()}, indent=2, default=str))
        return 0
    report = outcome.prune
    print(f"tuned {workload.name} on {request.gpu}/{request.backend} "
          f"[{request.precision}]")
    print(f"  space: {report.space_size} candidates, {len(report.pruned)} "
          f"pruned by the occupancy/roofline models "
          f"({100 * report.pruned_fraction:.0f}%)")
    print(f"  search: {outcome.strategy}, budget {outcome.budget}, "
          f"{len(outcome.evaluations)} measured")
    print(f"  best: {outcome.best.config.label()}")
    print(f"  measured {outcome.best.measured_ms:.4g} ms vs untuned "
          f"{outcome.baseline.measured_ms:.4g} ms "
          f"({outcome.speedup:.2f}x speedup)")
    print(f"  stored as {outcome.db_key} in "
          f"{args.tune_dir or DEFAULT_TUNE_DIR}")
    print("\n  modelled vs measured ranking:")
    print(f"  {'config':42s} {'modelled ms':>12s} {'measured ms':>12s} "
          f"{'source':>8s}")
    for e in outcome.ranking():
        modelled = f"{e.modelled_ms:.5f}" if e.modelled_ms != float("inf") \
            else "-"
        measured = f"{e.measured_ms:.5f}" if e.ok else "failed"
        print(f"  {e.config.label():42s} {modelled:>12s} {measured:>12s} "
              f"{e.source:>8s}")
    return 0


def _cmd_report(ids: List[str], *, write: Optional[str], full: bool,
                tuning: bool = True, graphopt: bool = True,
                obs: bool = True) -> int:
    if not ids or any(i.lower() == "all" for i in ids):
        wanted = list_experiments()
    else:
        wanted = ids
    unknown = [i for i in wanted if i.lower() not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s) {unknown}; available: "
              f"{', '.join(list_experiments())}", file=sys.stderr)
        return 2
    collector = None
    if obs:
        from .obs import TraceCollector, install_trace_collector

        # Trace the experiment runs themselves so the observability
        # section can report per-span modelled-vs-wall calibration error.
        collector = TraceCollector()
        with install_trace_collector(collector):
            results = [run_experiment(i, quick=not full) for i in wanted]
    else:
        results = [run_experiment(i, quick=not full) for i in wanted]

    lines = [
        "# EXPERIMENTS",
        "",
        "Regenerated reports for the paper's tables and figures, produced",
        "on the simulated substrate from the unified result schema.",
        "Regenerate with `python -m repro report --write EXPERIMENTS.md`",
        f"(repro {__version__}, {'full' if full else 'quick'} sweeps).",
        "",
        "| experiment | description | comparisons | status |",
        "|---|---|---|---|",
    ]
    for result in results:
        status = "pass" if result.all_passed else "MISMATCH"
        lines.append(f"| {result.experiment_id} | {result.description} | "
                     f"{len(result.comparisons)} | {status} |")
    for result in results:
        lines.append("")
        lines.append(result.to_markdown())
    if tuning:
        from .tuning.report import tuning_report

        lines.append("")
        lines.append(tuning_report().to_markdown())
    if graphopt:
        from .graphopt import graphopt_report

        lines.append("")
        lines.append(graphopt_report().to_markdown())
    if obs:
        from .obs import observability_markdown

        lines.extend(observability_markdown(collector))
    document = "\n".join(lines) + "\n"

    if write:
        with open(write, "w", encoding="utf-8") as fh:
            fh.write(document)
        print(f"wrote {len(results)} experiment report(s) to {write}")
    else:
        print(document)
    return 0 if all(r.all_passed for r in results) else 1


#: pytest ``-k`` expression selecting the fast benchmark subset for
#: ``bench-compare --quick`` (the executor/dispatch/graph-launch
#: microbenchmarks — the paths substrate changes regress first — while the
#: multi-second reference benches stay out of the tier-1 flow)
QUICK_BENCH_EXPR = ("executor or dispatch or vectorized or graph or tuned "
                    "or lint or fused or lowered or region or trace")


def _cmd_trace(args) -> int:
    from .harness.runner import MeasurementProtocol
    from .obs import (TraceCollector, build_chrome_trace,
                      install_trace_collector, modelled_vs_wall, snapshot)
    from .workloads import get_workload

    workload = get_workload(args.workload)
    request = workload.make_request(
        gpu=args.gpu, backend=args.backend,
        params=_parse_param_overrides(args.param),
        protocol=MeasurementProtocol(warmup=0, repeats=1),
        verify=not args.no_verify, executor=args.executor,
        streams=args.streams, optimize=args.optimize,
    )
    collector = TraceCollector()
    with install_trace_collector(collector):
        result = workload.run(request)
        if args.optimize != "none":
            # Put the graph-compiled pipeline on the timeline too: the
            # workload's capture/replay probe goes through the requested
            # pass pipeline, and its replay expands into per-operation
            # graph slices on the device tracks.
            probe = workload.tuning_probe(request)
            if probe is not None:
                probe.replay()
    trace = build_chrome_trace(collector, metrics_snapshot=snapshot())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=1)
            fh.write("\n")
    if args.json:
        print(json.dumps(trace, indent=1))
    else:
        events = trace["traceEvents"]
        tracks = {(e["pid"], e.get("tid", 0)) for e in events
                  if e.get("ph") != "M"}
        print(f"{workload.name} on {request.gpu}/{request.backend}: "
              f"{len(collector.spans)} host span(s), "
              f"{len(collector.contexts)} device context(s), "
              f"{len(events)} trace event(s) on {len(tracks)} track(s)")
        for row in modelled_vs_wall(collector):
            print(f"  {row['name']}: wall {row['wall_ms']:.3f} ms, "
                  f"modelled {row['modelled_ms']:.3f} ms "
                  f"({row['error_pct']:+.1f}% host overhead)")
        if args.output:
            print(f"wrote Chrome trace to {args.output} "
                  "(load in https://ui.perfetto.dev or chrome://tracing)")
    return 0 if (not result.verification.ran
                 or result.verification.passed) else 1


def _run_host_benchmarks(bench_file: str, *, quick: bool = False,
                         cache_stats_path: Optional[str] = None) -> str:
    """Run the host-execution benchmarks, returning the JSON export path.

    ``cache_stats_path`` is forwarded to the benchmark subprocess (via
    ``REPRO_CACHE_STATS_PATH``), which dumps its compile/result cache
    counters there at session end — see ``benchmarks/conftest.py``.
    """
    import os
    import subprocess
    import tempfile

    out = tempfile.NamedTemporaryFile(prefix="repro-bench-", suffix=".json",
                                      delete=False)
    out.close()
    cmd = [sys.executable, "-m", "pytest", bench_file, "-q",
           "--benchmark-json", out.name]
    if quick:
        cmd += ["-k", QUICK_BENCH_EXPR]
    env = dict(os.environ)
    if cache_stats_path:
        env["REPRO_CACHE_STATS_PATH"] = cache_stats_path
    proc = subprocess.run(cmd, env=env)
    if proc.returncode != 0:
        print(f"benchmark run failed (exit {proc.returncode}): {' '.join(cmd)}",
              file=sys.stderr)
        raise SystemExit(proc.returncode or 1)
    return out.name


def _cmd_bench_compare(*, baseline: Optional[str], current: Optional[str],
                       threshold: Optional[float], update: bool,
                       quick: bool = False) -> int:
    from .core.errors import ConfigurationError
    from .harness import benchcheck

    try:
        return _bench_compare_inner(benchcheck, baseline=baseline,
                                    current=current, threshold=threshold,
                                    update=update, quick=quick)
    except ConfigurationError as exc:
        print(f"bench-compare: {exc}", file=sys.stderr)
        return 2


def _print_cache_counters(stats: Optional[dict] = None,
                          origin: str = "this process") -> None:
    """Report the substrate caches' hit/miss counters.

    *stats* is the ``{"compile": ..., "result": ...}`` payload exported by
    the benchmark subprocess; without it the current process's counters are
    reported (meaningful when the caller itself exercised the caches).
    """
    if stats is None:
        from .core.compiler import compile_cache_info
        from .workloads.cache import result_cache_info

        stats = {"compile": compile_cache_info(),
                 "result": result_cache_info()}
    compile_info = stats["compile"]
    result_info = stats["result"]
    print(f"compile cache ({origin}): {compile_info['hits']} hit(s), "
          f"{compile_info['misses']} miss(es), "
          f"{compile_info['size']}/{compile_info['maxsize']} entries")
    print(f"result cache ({origin}):  {result_info['hits']} hit(s), "
          f"{result_info['misses']} miss(es), "
          f"{result_info['size']}/{result_info['maxsize']} entries")


def _bench_compare_inner(benchcheck, *, baseline: Optional[str],
                         current: Optional[str], threshold: Optional[float],
                         update: bool, quick: bool = False) -> int:
    import os

    import json as json_mod
    import tempfile

    from .core.errors import ConfigurationError

    if update and quick:
        # --update rewrites the whole baseline file; a quick-subset run
        # would silently drop the reference-benchmark entries from it.
        raise ConfigurationError(
            "--update requires the full benchmark run; drop --quick")

    baseline_path = baseline or benchcheck.DEFAULT_BASELINE_PATH
    threshold = threshold if threshold is not None else benchcheck.DEFAULT_THRESHOLD
    cache_stats = None
    cache_origin = "this process"
    if current is None:
        stats_file = tempfile.NamedTemporaryFile(prefix="repro-cache-stats-",
                                                 suffix=".json", delete=False)
        stats_file.close()
        current_path = _run_host_benchmarks(benchcheck.DEFAULT_BENCH_FILE,
                                            quick=quick,
                                            cache_stats_path=stats_file.name)
        try:
            current_stats = benchcheck.load_stats(current_path)
            try:
                with open(stats_file.name, "r", encoding="utf-8") as fh:
                    cache_stats = json_mod.load(fh)
                cache_origin = "benchmark run"
            except (OSError, json_mod.JSONDecodeError):
                cache_stats = None
        finally:
            for path in (current_path, stats_file.name):
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
    else:
        current_stats = benchcheck.load_stats(current)

    if update:
        benchcheck.write_baseline(baseline_path, current_stats)
        print(f"wrote {len(current_stats)} benchmark baselines to {baseline_path}")
        return 0

    baseline_stats = benchcheck.load_stats(baseline_path)
    rows = benchcheck.compare_benchmarks(baseline_stats, current_stats,
                                         threshold=threshold)
    subset = " (--quick subset)" if quick else ""
    print(f"bench-compare against {baseline_path} "
          f"(threshold {threshold:g}x){subset}:")
    for row in rows:
        print(row.to_text())
    _print_cache_counters(cache_stats, cache_origin)
    failures = [r for r in rows if r.regressed]
    if failures:
        print(f"{len(failures)} benchmark(s) regressed more than "
              f"{threshold:g}x", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args.ids, full=args.full, verify=args.verify,
                        markdown=args.markdown)
    if args.command == "workloads":
        return _cmd_workloads(as_json=args.json)
    if args.command == "bench":
        try:
            return _cmd_bench(args)
        except ReproError as exc:
            # exit 2 is the config-error contract; exit 1 is reserved for a
            # failed verification (VerificationError inside the workload is
            # already folded into the result by Workload.run)
            print(f"bench: {exc}", file=sys.stderr)
            return 2
    if args.command == "sweep":
        try:
            return _cmd_sweep(args)
        except ReproError as exc:
            print(f"sweep: {exc}", file=sys.stderr)
            return 2
    if args.command == "tune":
        try:
            return _cmd_tune(args)
        except ReproError as exc:
            print(f"tune: {exc}", file=sys.stderr)
            return 2
    if args.command == "report":
        return _cmd_report(args.ids, write=args.write, full=args.full,
                           tuning=not args.no_tuning,
                           graphopt=not args.no_graphopt,
                           obs=not args.no_obs)
    if args.command == "trace":
        try:
            return _cmd_trace(args)
        except ReproError as exc:
            print(f"trace: {exc}", file=sys.stderr)
            return 2
    if args.command == "lint":
        try:
            return _cmd_lint(args)
        except ReproError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
    if args.command == "graph":
        try:
            return _cmd_graph(args)
        except ReproError as exc:
            print(f"graph: {exc}", file=sys.stderr)
            return 2
    if args.command == "bench-compare":
        return _cmd_bench_compare(baseline=args.baseline, current=args.current,
                                  threshold=args.threshold, update=args.update,
                                  quick=args.quick)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
