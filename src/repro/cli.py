"""Command-line interface: ``python -m repro`` / ``repro-experiments``.

Subcommands
-----------
``list``
    List the available experiments (one per paper table/figure) and GPUs.
``run <ids...>``
    Run one or more experiments (or ``all``) and print their reports.
``info``
    Show the simulated hardware and backend registry.
``bench-compare``
    Guard the host-execution microbenchmarks against performance
    regressions: compare a pytest-benchmark export (running the benchmarks
    when none is supplied) against ``benchmarks/baseline.json`` and fail on
    any regression beyond the threshold.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .backends import get_backend, list_backends
from .experiments import EXPERIMENTS, list_experiments, run_experiment
from .gpu import get_gpu, list_gpus

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the Mojo GPU science-"
                    "kernels paper on the simulated substrate.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run experiments and print their reports")
    run_p.add_argument("ids", nargs="+",
                       help="experiment ids (fig2..fig7, table2..table5) or 'all'")
    run_p.add_argument("--full", action="store_true",
                       help="run the full (non-quick) parameter sweeps")
    run_p.add_argument("--verify", action="store_true",
                       help="also run functional verification on the simulator")
    run_p.add_argument("--markdown", action="store_true",
                       help="emit markdown instead of plain text")

    sub.add_parser("info", help="show simulated GPUs and backends")

    bench_p = sub.add_parser(
        "bench-compare",
        help="compare host-execution benchmarks against the stored baseline")
    bench_p.add_argument("--baseline", default=None,
                         help="baseline JSON (default benchmarks/baseline.json)")
    bench_p.add_argument("--current", default=None,
                         help="existing pytest-benchmark JSON export to check; "
                              "omitted: run the benchmarks now")
    bench_p.add_argument("--threshold", type=float, default=None,
                         help="failure factor (default 2.0: fail when a "
                              "benchmark is more than 2x slower)")
    bench_p.add_argument("--update", action="store_true",
                         help="write the measured stats as the new baseline "
                              "instead of failing on regressions")
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for key in list_experiments():
        print(f"  {key:8s} {EXPERIMENTS[key].DESCRIPTION}")
    print("\ngpus:     " + ", ".join(list_gpus()))
    print("backends: " + ", ".join(list_backends()))
    return 0


def _cmd_info() -> int:
    print("Simulated GPUs (paper Table 1):")
    for name in list_gpus():
        spec = get_gpu(name)
        print(f"  {name:8s} {spec.full_name}: {spec.mem_bw_gbs:.0f} GB/s, "
              f"{spec.fp32_tflops} FP32 / {spec.fp64_tflops} FP64 TFLOP/s, "
              f"{spec.sm_count} SMs")
    print("\nBackends:")
    for name in list_backends():
        be = get_backend(name)
        print(f"  {name:8s} {be.display_name}: vendors={be.supported_vendors}, "
              f"fast-math={'yes' if be.fast_math_available else 'no'}, "
              f"portable={'yes' if be.portable else 'no'}")
    return 0


def _cmd_run(ids: List[str], *, full: bool, verify: bool, markdown: bool) -> int:
    wanted = list_experiments() if any(i.lower() == "all" for i in ids) else ids
    status = 0
    for experiment_id in wanted:
        options = {"quick": not full}
        module = EXPERIMENTS.get(experiment_id.lower())
        if module is None:
            print(f"unknown experiment {experiment_id!r}; available: "
                  f"{', '.join(list_experiments())}", file=sys.stderr)
            return 2
        if verify and "verify" in module.run.__code__.co_varnames:
            options["verify"] = True
        result = run_experiment(experiment_id, **options)
        print(result.to_markdown() if markdown else result.to_text())
        print()
        if not result.all_passed:
            status = 1
    return status


def _run_host_benchmarks(bench_file: str) -> str:
    """Run the host-execution benchmarks, returning the JSON export path."""
    import subprocess
    import tempfile

    out = tempfile.NamedTemporaryFile(prefix="repro-bench-", suffix=".json",
                                      delete=False)
    out.close()
    cmd = [sys.executable, "-m", "pytest", bench_file, "-q",
           "--benchmark-json", out.name]
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print(f"benchmark run failed (exit {proc.returncode}): {' '.join(cmd)}",
              file=sys.stderr)
        raise SystemExit(proc.returncode or 1)
    return out.name


def _cmd_bench_compare(*, baseline: Optional[str], current: Optional[str],
                       threshold: Optional[float], update: bool) -> int:
    from .core.errors import ConfigurationError
    from .harness import benchcheck

    try:
        return _bench_compare_inner(benchcheck, baseline=baseline,
                                    current=current, threshold=threshold,
                                    update=update)
    except ConfigurationError as exc:
        print(f"bench-compare: {exc}", file=sys.stderr)
        return 2


def _bench_compare_inner(benchcheck, *, baseline: Optional[str],
                         current: Optional[str], threshold: Optional[float],
                         update: bool) -> int:
    import os

    baseline_path = baseline or benchcheck.DEFAULT_BASELINE_PATH
    threshold = threshold if threshold is not None else benchcheck.DEFAULT_THRESHOLD
    if current is None:
        current_path = _run_host_benchmarks(benchcheck.DEFAULT_BENCH_FILE)
        try:
            current_stats = benchcheck.load_stats(current_path)
        finally:
            try:
                os.unlink(current_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    else:
        current_stats = benchcheck.load_stats(current)

    if update:
        benchcheck.write_baseline(baseline_path, current_stats)
        print(f"wrote {len(current_stats)} benchmark baselines to {baseline_path}")
        return 0

    baseline_stats = benchcheck.load_stats(baseline_path)
    rows = benchcheck.compare_benchmarks(baseline_stats, current_stats,
                                         threshold=threshold)
    print(f"bench-compare against {baseline_path} (threshold {threshold:g}x):")
    for row in rows:
        print(row.to_text())
    failures = [r for r in rows if r.regressed]
    if failures:
        print(f"{len(failures)} benchmark(s) regressed more than "
              f"{threshold:g}x", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        return _cmd_list()
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args.ids, full=args.full, verify=args.verify,
                        markdown=args.markdown)
    if args.command == "bench-compare":
        return _cmd_bench_compare(baseline=args.baseline, current=args.current,
                                  threshold=args.threshold, update=args.update)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
