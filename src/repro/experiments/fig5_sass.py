"""Figure 5 — Mojo vs CUDA generated assembly for the Triad kernel.

Compiles the Triad kernel model with the Mojo and CUDA backends, renders the
side-by-side instruction-mix listing, and checks the paper's three
observations: fewer constant loads for Mojo, more integer adds for Mojo, and
matching global load/store counts.
"""

from __future__ import annotations

from ..backends import get_backend
from ..core.kernel import LaunchConfig
from ..harness.compare import qualitative_comparison
from ..harness.paper_data import FIGURE_EXPECTATIONS
from ..harness.results import ExperimentResult, ResultTable
from ..kernels.babelstream import babelstream_kernel_model
from ..profiling.sass import compare_sass

EXPERIMENT_ID = "fig5"
DESCRIPTION = "Triad kernel instruction mix: Mojo vs CUDA SASS comparison"


def run(*, n: int = 2 ** 25, gpu: str = "h100", quick: bool = True) -> ExperimentResult:
    """Regenerate Figure 5."""
    result = ExperimentResult(EXPERIMENT_ID, DESCRIPTION)
    model = babelstream_kernel_model("triad", n=n, precision="float64")
    launch = LaunchConfig.for_elements(n, 1024)

    mojo = get_backend("mojo").compile(model, gpu, launch=launch)
    cuda = get_backend("cuda").compile(model, gpu, launch=launch)
    comparison = compare_sass(mojo, cuda)

    table = ResultTable(
        columns=["instruction", "mojo", "cuda"],
        title="Per-thread instruction mix (Triad)",
    )
    table.add_row(instruction="registers/thread", mojo=mojo.registers_per_thread,
                  cuda=cuda.registers_per_thread)
    opcodes = sorted(set(mojo.instruction_mix) | set(cuda.instruction_mix))
    for opcode in opcodes:
        l = mojo.instruction_mix.get(opcode, 0.0)
        r = cuda.instruction_mix.get(opcode, 0.0)
        if l == 0 and r == 0:
            continue
        table.add_row(instruction=opcode, mojo=round(l, 2), cuda=round(r, 2))
    result.add_table(table)
    result.extra_text.append(comparison.to_text())

    observations = comparison.observations
    labels = {
        "fewer_constant_loads": "Mojo emits fewer constant loads than CUDA",
        "fewer_registers_more_int_ops": "Mojo issues more integer add operations",
        "matching_global_accesses": "global loads/stores match between models",
    }
    for key, label in labels.items():
        result.add_comparison(qualitative_comparison(label, observations[key]))
    result.notes.append(FIGURE_EXPECTATIONS["fig5"])
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
