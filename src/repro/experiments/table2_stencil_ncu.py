"""Table 2 — seven-point stencil ncu profiling metrics, Mojo vs CUDA on H100.

Profiles the two configurations of the paper's Table 2 (FP64 at L=512 and
FP32 at L=1024, 512/1024-wide blocks) and checks the table's qualitative
content: Mojo uses more registers, shows higher SM throughput and lower
memory throughput, both models issue 7 global loads and 1 store, and the
Mojo/CUDA duration ratio matches the ~0.87 bandwidth efficiency.
"""

from __future__ import annotations

from ..backends import get_backend
from ..harness.compare import qualitative_comparison, ratio_comparison
from ..harness.paper_data import TABLE2_STENCIL_NCU
from ..harness.results import ExperimentResult, ResultTable
from ..kernels.stencil import stencil_kernel_model, stencil_launch_config
from ..profiling.ncu import NcuReport

EXPERIMENT_ID = "table2"
DESCRIPTION = "Seven-point stencil: Mojo vs CUDA ncu profiling metrics (H100)"

#: the two profiled configurations of Table 2
CONFIGS = (
    {"precision": "float64", "L": 512, "block": (512, 1, 1)},
    {"precision": "float32", "L": 1024, "block": (1024, 1, 1)},
)


def run(*, gpu: str = "h100", quick: bool = True) -> ExperimentResult:
    """Regenerate Table 2."""
    result = ExperimentResult(EXPERIMENT_ID, DESCRIPTION)
    report = NcuReport(title="Seven-Point Stencil Mojo vs CUDA NCU Profiling Metrics")
    table = ResultTable(
        columns=["precision", "L", "backend", "duration_ms", "compute_sm_pct",
                 "memory_pct", "l1_ai", "l2_ai", "dram_ai", "registers",
                 "ldg", "stg"],
        title="Simulated ncu metrics",
    )

    runs = {}
    for cfg in CONFIGS:
        model = stencil_kernel_model(L=cfg["L"], precision=cfg["precision"])
        launch = stencil_launch_config(cfg["L"], cfg["block"])
        for backend in ("mojo", "cuda"):
            run_ = get_backend(backend).time(model, gpu, launch)
            label = f"{cfg['precision']}/{backend}"
            counters = report.add_run(label, run_)
            runs[(cfg["precision"], backend)] = counters
            table.add_row(
                precision=cfg["precision"], L=cfg["L"], backend=backend,
                duration_ms=counters.duration_ms,
                compute_sm_pct=counters.compute_throughput_pct,
                memory_pct=counters.memory_throughput_pct,
                l1_ai=counters.l1_arithmetic_intensity,
                l2_ai=counters.l2_arithmetic_intensity,
                dram_ai=counters.dram_arithmetic_intensity,
                registers=counters.registers_per_thread,
                ldg=counters.load_global_per_thread,
                stg=counters.store_global_per_thread,
            )
    result.add_table(table)
    result.extra_text.append(report.to_text())

    for precision in ("float64", "float32"):
        mojo = runs[(precision, "mojo")]
        cuda = runs[(precision, "cuda")]
        paper_mojo = TABLE2_STENCIL_NCU[(precision, "mojo")]
        paper_cuda = TABLE2_STENCIL_NCU[(precision, "cuda")]

        result.add_comparison(ratio_comparison(
            f"{precision}: Mojo/CUDA duration ratio",
            mojo.duration_ms / cuda.duration_ms,
            paper_mojo["duration_ms"] / paper_cuda["duration_ms"], rel_tol=0.10,
        ))
        result.add_comparison(qualitative_comparison(
            f"{precision}: Mojo uses more registers than CUDA "
            f"({mojo.registers_per_thread} vs {cuda.registers_per_thread})",
            mojo.registers_per_thread > cuda.registers_per_thread,
        ))
        result.add_comparison(ratio_comparison(
            f"{precision}: Mojo registers/thread",
            mojo.registers_per_thread, paper_mojo["registers"], rel_tol=0.15,
        ))
        result.add_comparison(ratio_comparison(
            f"{precision}: CUDA registers/thread",
            cuda.registers_per_thread, paper_cuda["registers"], rel_tol=0.15,
        ))
        # The paper's headline reading of Table 2: CUDA makes more efficient
        # use of the memory subsystem (higher achieved memory throughput),
        # which is what drives the duration difference.  (The absolute SM%
        # inversion reported by ncu is not reproduced by the instruction-issue
        # model; see EXPERIMENTS.md.)
        result.add_comparison(qualitative_comparison(
            f"{precision}: CUDA achieves higher memory throughput than Mojo",
            mojo.memory_throughput_pct < cuda.memory_throughput_pct,
            detail=f"mojo {mojo.memory_throughput_pct:.1f}% vs "
                   f"cuda {cuda.memory_throughput_pct:.1f}%",
        ))
        result.add_comparison(qualitative_comparison(
            f"{precision}: both models perform 7 global loads and 1 store per cell",
            (mojo.load_global_per_thread == cuda.load_global_per_thread == 7
             and mojo.store_global_per_thread == cuda.store_global_per_thread == 1),
        ))
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
