"""Table 3 — BabelStream ncu profiling metrics, Mojo vs CUDA on H100.

Profiles Copy, Mul, Add and Dot (the columns of the paper's Table 3) and
checks the table's qualitative content: streaming kernels are slightly faster
for Mojo with comparable memory throughput and lower compute throughput than
CUDA... except for the Dot kernel where Mojo is slower and uses more
registers.
"""

from __future__ import annotations

from ..backends import get_backend
from ..core.kernel import LaunchConfig
from ..harness.compare import qualitative_comparison, ratio_comparison
from ..harness.paper_data import TABLE3_BABELSTREAM_NCU
from ..harness.results import ExperimentResult, ResultTable
from ..kernels.babelstream import BabelStreamBenchmark, babelstream_kernel_model
from ..profiling.ncu import NcuReport

EXPERIMENT_ID = "table3"
DESCRIPTION = "BabelStream: Mojo vs CUDA ncu profiling metrics (H100)"

#: the operations profiled in Table 3
OPERATIONS = ("copy", "mul", "add", "dot")


def run(*, gpu: str = "h100", n: int = 2 ** 25, quick: bool = True) -> ExperimentResult:
    """Regenerate Table 3."""
    result = ExperimentResult(EXPERIMENT_ID, DESCRIPTION)
    report = NcuReport(title="BabelStream Mojo vs CUDA NCU Profiling Metrics")
    table = ResultTable(
        columns=["operation", "backend", "duration_ms", "compute_sm_pct",
                 "memory_pct", "registers", "ldg", "stg"],
        title=f"Simulated ncu metrics ({n} x float64)",
    )

    counters = {}
    for backend in ("mojo", "cuda"):
        bench = BabelStreamBenchmark(n=n, precision="float64", backend=backend,
                                     gpu=gpu, num_times=3)
        for op in OPERATIONS:
            launch = bench.launch_for(op)
            model = bench.model_for(op)
            run_ = get_backend(backend).time(model, gpu, launch)
            c = report.add_run(f"{op}/{backend}", run_)
            counters[(op, backend)] = c
            table.add_row(operation=op, backend=backend,
                          duration_ms=c.duration_ms,
                          compute_sm_pct=c.compute_throughput_pct,
                          memory_pct=c.memory_throughput_pct,
                          registers=c.registers_per_thread,
                          ldg=c.load_global_per_thread,
                          stg=c.store_global_per_thread)
    result.add_table(table)
    result.extra_text.append(report.to_text())

    for op in ("copy", "mul", "add"):
        mojo, cuda = counters[(op, "mojo")], counters[(op, "cuda")]
        paper_ratio = (TABLE3_BABELSTREAM_NCU[(op, "mojo")]["duration_ms"]
                       / TABLE3_BABELSTREAM_NCU[(op, "cuda")]["duration_ms"])
        result.add_comparison(ratio_comparison(
            f"{op}: Mojo/CUDA duration ratio",
            mojo.duration_ms / cuda.duration_ms, paper_ratio, rel_tol=0.10,
        ))
        result.add_comparison(qualitative_comparison(
            f"{op}: Mojo is at least as fast as CUDA",
            mojo.duration_ms <= cuda.duration_ms * 1.005,
        ))
    mojo_dot, cuda_dot = counters[("dot", "mojo")], counters[("dot", "cuda")]
    result.add_comparison(qualitative_comparison(
        "dot: Mojo is slower than CUDA",
        mojo_dot.duration_ms > cuda_dot.duration_ms,
        detail=f"{mojo_dot.duration_ms:.3f} vs {cuda_dot.duration_ms:.3f} ms",
    ))
    result.add_comparison(qualitative_comparison(
        "dot: Mojo uses more registers than CUDA",
        mojo_dot.registers_per_thread > cuda_dot.registers_per_thread,
    ))
    result.add_comparison(ratio_comparison(
        "dot: Mojo/CUDA duration ratio",
        mojo_dot.duration_ms / cuda_dot.duration_ms,
        TABLE3_BABELSTREAM_NCU[("dot", "mojo")]["duration_ms"]
        / TABLE3_BABELSTREAM_NCU[("dot", "cuda")]["duration_ms"],
        rel_tol=0.20,
    ))
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
