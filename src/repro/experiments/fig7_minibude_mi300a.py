"""Figure 7 — miniBUDE GFLOP/s on AMD MI300A (Mojo vs HIP ± fast-math).

Same sweep as Figure 6 on the AMD platform; the paper's reading is that Mojo
underperforms both the fast-math and plain HIP builds.
"""

from __future__ import annotations

from ..harness.results import ExperimentResult
from .fig6_minibude_h100 import run as _run_minibude_figure

EXPERIMENT_ID = "fig7"
DESCRIPTION = "miniBUDE GFLOP/s on AMD MI300A: Mojo vs HIP (± fast-math)"


def run(*, quick: bool = True, verify: bool = False) -> ExperimentResult:
    """Regenerate Figure 7."""
    return _run_minibude_figure(quick=quick, verify=verify, gpu="mi300a",
                                baseline="hip")


def main() -> None:  # pragma: no cover - CLI entry
    print(run(quick=False).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
