"""Figure 4 — BabelStream bandwidth, Mojo vs CUDA (H100) and HIP (MI300A).

Runs the five operations at the paper's 2^25-element size on both platforms
and checks the per-operation Mojo efficiency against Table 5 (≈1.01 for the
streaming kernels on H100, 0.78 for Dot, parity on MI300A).

Dispatches through the unified Workload API (one ``RunRequest`` per
platform/backend); the per-operation bandwidths come out of the uniform
``WorkloadResult.metrics`` mapping.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..harness.compare import ratio_comparison
from ..harness.paper_data import FIGURE_EXPECTATIONS, TABLE5_EFFICIENCIES
from ..harness.results import ExperimentResult, ResultTable
from ..harness.runner import MeasurementProtocol
from ..kernels.babelstream import BABELSTREAM_OPS
from ..workloads import get_workload

EXPERIMENT_ID = "fig4"
DESCRIPTION = "BabelStream bandwidth: Mojo vs CUDA (H100) and HIP (MI300A)"

PLATFORMS = (("h100", "cuda"), ("mi300a", "hip"))


def run(*, n: int = 2 ** 25, precision: str = "float64", quick: bool = True,
        verify: bool = False) -> ExperimentResult:
    """Regenerate Figure 4 (both panels)."""
    result = ExperimentResult(EXPERIMENT_ID, DESCRIPTION)
    table = ResultTable(
        columns=["gpu", "operation", "mojo_gbs", "baseline", "baseline_gbs",
                 "efficiency"],
        title=f"BabelStream bandwidth (Eq. 2), {n} x {precision}",
    )

    workload = get_workload("babelstream")
    protocol = MeasurementProtocol(warmup=1, repeats=4)
    efficiencies: Dict[Tuple[str, str], float] = {}
    for gpu, baseline in PLATFORMS:
        request = workload.make_request(
            gpu=gpu, backend="mojo", precision=precision, params={"n": n},
            protocol=protocol, verify=verify)
        mojo = workload.run(request)
        base = workload.run(request.replace(backend=baseline, verify=False))
        for op in BABELSTREAM_OPS:
            eff = mojo.metrics[f"{op}_gbs"] / base.metrics[f"{op}_gbs"]
            efficiencies[(op, gpu)] = eff
            table.add_row(gpu=gpu, operation=op,
                          mojo_gbs=mojo.metrics[f"{op}_gbs"],
                          baseline=baseline,
                          baseline_gbs=base.metrics[f"{op}_gbs"],
                          efficiency=eff)
    result.add_table(table)

    paper = TABLE5_EFFICIENCIES["babelstream"]
    for (op, gpu), eff in efficiencies.items():
        expected = paper.get((op, gpu))
        result.add_comparison(ratio_comparison(
            f"babelstream {op} efficiency on {gpu}", eff, expected, rel_tol=0.10,
        ))
    result.notes.append(FIGURE_EXPECTATIONS["fig4"])
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run(quick=False).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
