"""Table 4 — Hartree–Fock kernel wall-clock times, Mojo vs CUDA and HIP.

Runs the helium systems of the paper's Table 4 on both platforms and checks
the table's structure: Mojo beats CUDA by roughly 2.5x on H100 up to 256
atoms, collapses for the 1024-atom / 6-Gaussian case, and trails HIP by
orders of magnitude on MI300A.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..harness.compare import ordering_comparison, qualitative_comparison, ratio_comparison
from ..harness.paper_data import TABLE4_HARTREE_FOCK_MS, TEXT_RATIOS
from ..harness.results import ExperimentResult, ResultTable
from ..kernels.hartreefock import run_hartreefock

EXPERIMENT_ID = "table4"
DESCRIPTION = "Hartree-Fock kernel wall-clock times: Mojo vs CUDA and HIP"

#: (natoms, ngauss) rows of Table 4, largest first as in the paper
ROWS = ((1024, 6), (256, 3), (128, 3), (64, 3))
#: columns of Table 4
COLUMNS = (("h100", "mojo"), ("h100", "cuda"), ("mi300a", "mojo"), ("mi300a", "hip"))


def run(*, quick: bool = True, verify: bool = False) -> ExperimentResult:
    """Regenerate Table 4."""
    result = ExperimentResult(EXPERIMENT_ID, DESCRIPTION)
    rows = ROWS[1:] if quick else ROWS     # the 1024-atom case is the slow one
    table = ResultTable(
        columns=["natoms", "ngauss", "h100_mojo_ms", "h100_cuda_ms",
                 "mi300a_mojo_ms", "mi300a_hip_ms", "surviving_fraction"],
        title="Kernel execution duration (ms)",
    )

    measured: Dict[Tuple[int, int, str, str], float] = {}
    for natoms, ngauss in rows:
        values = {}
        surviving = None
        for gpu, backend in COLUMNS:
            res = run_hartreefock(natoms=natoms, ngauss=ngauss, backend=backend,
                                  gpu=gpu, verify=verify)
            verify = False
            measured[(natoms, ngauss, gpu, backend)] = res.kernel_time_ms
            values[f"{gpu}_{backend}_ms"] = res.kernel_time_ms
            surviving = res.surviving_fraction
        table.add_row(natoms=natoms, ngauss=ngauss,
                      surviving_fraction=surviving, **values)
    result.add_table(table)

    # Shape checks per row.
    for natoms, ngauss in rows:
        key = lambda gpu, backend: measured[(natoms, ngauss, gpu, backend)]
        label = f"a={natoms} ngauss={ngauss}"
        if (natoms, ngauss) != (1024, 6):
            result.add_comparison(ratio_comparison(
                f"{label}: Mojo speedup over CUDA on H100",
                key("h100", "cuda") / key("h100", "mojo"),
                TEXT_RATIOS["hartreefock_mojo_speedup_vs_cuda_h100"], rel_tol=0.30,
            ))
        else:
            result.add_comparison(qualitative_comparison(
                f"{label}: Mojo collapses versus CUDA on H100",
                key("h100", "mojo") > 5.0 * key("h100", "cuda"),
                detail=f"{key('h100', 'mojo'):,.0f} vs {key('h100', 'cuda'):,.0f} ms",
            ))
        result.add_comparison(qualitative_comparison(
            f"{label}: Mojo trails HIP by >10x on MI300A",
            key("mi300a", "mojo") > 10.0 * key("mi300a", "hip"),
            detail=f"{key('mi300a', 'mojo'):,.0f} vs {key('mi300a', 'hip'):,.0f} ms",
        ))
        paper_row = TABLE4_HARTREE_FOCK_MS.get((natoms, ngauss), {})
        # The paper itself reports "abnormal behaviour" for the 512/1024-atom
        # cases, so the largest row gets a wider absolute band.
        abs_tol = 4.0 if (natoms, ngauss) == (1024, 6) else 2.0
        for gpu, backend in COLUMNS:
            paper_value = paper_row.get((gpu, backend))
            if paper_value is None:
                continue
            result.add_comparison(ratio_comparison(
                f"{label}: {backend} on {gpu} duration (ms)",
                key(gpu, backend), paper_value, rel_tol=abs_tol,
                detail=f"absolute times are model-scale; ±{abs_tol:.0%} band",
            ))
    result.notes.append(
        "Surviving-quadruple fractions come from the synthetic helium lattice's "
        "Schwarz bounds; the paper's original decks are not redistributed."
    )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run(quick=False).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
