"""Figure 6 — miniBUDE GFLOP/s on NVIDIA H100 (Mojo vs CUDA ± fast-math).

Sweeps PPWI for the two work-group sizes and checks the relationships the
paper derives from the figure: Mojo sits between CUDA with and without
fast-math at small PPWI and outperforms plain CUDA for small PPWI and
work-group size.
"""

from __future__ import annotations

from typing import Dict

from ..harness.compare import ordering_comparison, qualitative_comparison
from ..harness.paper_data import FIGURE_EXPECTATIONS
from ..harness.plotting import Series, series_to_csv
from ..harness.results import ExperimentResult, ResultTable
from ..kernels.minibude import DEFAULT_PPWI_SWEEP, run_minibude

EXPERIMENT_ID = "fig6"
DESCRIPTION = "miniBUDE GFLOP/s on NVIDIA H100: Mojo vs CUDA (± fast-math)"

GPU = "h100"
BASELINE = "cuda"


def _variants(baseline: str):
    return (
        ("mojo", "mojo", False),
        (f"{baseline}_fastmath", baseline, True),
        (baseline, baseline, False),
    )


def run(*, quick: bool = True, verify: bool = False,
        gpu: str = GPU, baseline: str = BASELINE) -> ExperimentResult:
    """Regenerate Figure 6 (or Figure 7 when called with the AMD platform)."""
    result = ExperimentResult(EXPERIMENT_ID if gpu == GPU else "fig7",
                              DESCRIPTION if gpu == GPU else
                              DESCRIPTION.replace("NVIDIA H100", "AMD MI300A")
                                         .replace("CUDA", "HIP"))
    ppwis = (1, 2, 4, 8, 32, 128) if quick else DEFAULT_PPWI_SWEEP
    wgsizes = (8, 64)

    gflops: Dict[tuple, float] = {}
    for wg in wgsizes:
        table = ResultTable(
            columns=["ppwi"] + [name for name, _, _ in _variants(baseline)],
            title=f"miniBUDE bm1 GFLOP/s on {gpu}, work-group {wg}",
        )
        series = [Series(name) for name, _, _ in _variants(baseline)]
        for ppwi in ppwis:
            row = {"ppwi": ppwi}
            for s, (name, backend, fast_math) in zip(series, _variants(baseline)):
                res = run_minibude(ppwi=ppwi, wgsize=wg, backend=backend,
                                   gpu=gpu, fast_math=fast_math, verify=verify)
                verify = False  # only verify once per experiment
                gflops[(name, ppwi, wg)] = res.gflops
                row[name] = res.gflops
                s.add(ppwi, res.gflops)
            table.add_row(**row)
        result.add_table(table)
        result.extra_text.append(series_to_csv(series, x_label="ppwi"))

    # Shape checks derived from the paper's reading of the figure.
    small_ppwi, small_wg = ppwis[0], 8
    key = lambda name, p=small_ppwi, w=small_wg: gflops[(name, p, w)]
    if gpu == GPU:
        result.add_comparison(qualitative_comparison(
            "Mojo outperforms CUDA (no fast-math) at small PPWI and work-group",
            key("mojo") > key(baseline),
            detail=f"mojo={key('mojo'):.0f} vs {baseline}={key(baseline):.0f} GFLOP/s",
        ))
        result.add_comparison(ordering_comparison(
            "Mojo sits between CUDA with and without fast-math (small PPWI, wg=64)",
            {name: gflops[(name, small_ppwi, 64)] for name, _, _ in _variants(baseline)},
            expected_order=[f"{baseline}_fastmath", "mojo", baseline],
        ))
    else:
        result.add_comparison(ordering_comparison(
            "Mojo underperforms both HIP variants on MI300A",
            {name: gflops[(name, small_ppwi, 64)] for name, _, _ in _variants(baseline)},
            expected_order=[f"{baseline}_fastmath", baseline, "mojo"],
        ))
    result.notes.append(FIGURE_EXPECTATIONS["fig6" if gpu == GPU else "fig7"])
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run(quick=False).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
