"""Figure 3 — seven-point stencil bandwidth, Mojo vs CUDA (H100) and HIP (MI300A).

Sweeps the two problem sizes and both precisions for each platform, reports
the Eq. 1 effective bandwidth, and checks the Mojo-vs-baseline efficiency
against the paper's Table 5 values (0.82 FP32 / 0.87 FP64 on H100, parity on
MI300A).

Dispatches through the unified Workload API: the sweep produces
``RunRequest`` objects and the registry's ``stencil`` workload runs them, so
this module never touches the kernel-specific runner surface.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..harness.compare import ratio_comparison
from ..harness.paper_data import FIGURE_EXPECTATIONS, TABLE5_EFFICIENCIES
from ..harness.results import ExperimentResult, ResultTable
from ..harness.runner import MeasurementProtocol
from ..harness.sweep import sweep
from ..workloads import get_workload

EXPERIMENT_ID = "fig3"
DESCRIPTION = "Seven-point stencil bandwidth: Mojo vs CUDA (H100) and HIP (MI300A)"

#: the (gpu, baseline backend) pairs of Figure 3a / 3b
PLATFORMS = (("h100", "cuda"), ("mi300a", "hip"))


def run(*, quick: bool = True, iterations: int = 20, verify: bool = False) -> ExperimentResult:
    """Regenerate Figure 3 (both panels)."""
    result = ExperimentResult(EXPERIMENT_ID, DESCRIPTION)
    sizes = (512,) if quick else (512, 1024)
    block_shapes = ((512, 1, 1),) if quick else ((512, 1, 1), (1024, 1, 1))

    table = ResultTable(
        columns=["gpu", "precision", "L", "block", "mojo_gbs", "baseline",
                 "baseline_gbs", "efficiency"],
        title="Effective bandwidth (Eq. 1), GB/s",
    )

    workload = get_workload("stencil")
    protocol = MeasurementProtocol(warmup=1, repeats=max(iterations - 1, 1))
    efficiencies: Dict[Tuple[str, str], float] = {}
    for gpu, baseline in PLATFORMS:
        requests = sweep(precision=["float32", "float64"], L=list(sizes),
                         block_shape=list(block_shapes)).requests(
            workload, gpu=gpu, backend="mojo", protocol=protocol,
            verify=verify)
        for request in requests:
            mojo = workload.run(request)
            base = workload.run(request.replace(backend=baseline,
                                                verify=False))
            eff = mojo.primary_value / base.primary_value
            key = (request.precision, gpu)
            efficiencies.setdefault(key, eff)
            table.add_row(gpu=gpu, precision=request.precision,
                          L=request.params["L"],
                          block=str(request.params["block_shape"]),
                          mojo_gbs=mojo.primary_value, baseline=baseline,
                          baseline_gbs=base.primary_value, efficiency=eff)
    result.add_table(table)

    paper = TABLE5_EFFICIENCIES["stencil"]
    mapping = {("float32", "h100"): ("fp32", "h100"),
               ("float64", "h100"): ("fp64", "h100"),
               ("float32", "mi300a"): ("fp32", "mi300a"),
               ("float64", "mi300a"): ("fp64", "mi300a")}
    for key, paper_key in mapping.items():
        if key not in efficiencies:
            continue
        result.add_comparison(ratio_comparison(
            f"stencil efficiency {paper_key[0]} on {paper_key[1]}",
            efficiencies[key], paper[paper_key], rel_tol=0.15,
        ))
    result.notes.append(FIGURE_EXPECTATIONS["fig3"])
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run(quick=False).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
