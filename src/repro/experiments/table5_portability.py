"""Table 5 — Mojo performance-portability metric Φ across workloads.

Recomputes the per-configuration Mojo-vs-vendor efficiencies for all four
workloads on both platforms and aggregates them with the Eq. 4 arithmetic
mean, then compares each per-workload Φ against the paper's Table 5.
"""

from __future__ import annotations

from typing import Dict, List

from ..harness.compare import ratio_comparison
from ..harness.paper_data import TABLE5_PHI
from ..harness.results import ExperimentResult, ResultTable
from ..kernels.babelstream import BABELSTREAM_OPS, BabelStreamBenchmark
from ..kernels.hartreefock import run_hartreefock
from ..kernels.minibude import run_minibude
from ..kernels.stencil import run_stencil
from ..metrics.portability import PortabilityResult, efficiency, portability_from_entries

EXPERIMENT_ID = "table5"
DESCRIPTION = "Mojo performance portability metric (Eq. 4) across workloads"

PLATFORMS = (("h100", "cuda"), ("mi300a", "hip"))


def _stencil_samples(quick: bool) -> List[Dict]:
    samples = []
    for gpu, baseline in PLATFORMS:
        for precision in ("float32", "float64"):
            mojo = run_stencil(L=512, precision=precision, backend="mojo",
                               gpu=gpu, iterations=3, verify=False)
            base = run_stencil(L=512, precision=precision, backend=baseline,
                               gpu=gpu, iterations=3, verify=False)
            samples.append({
                "configuration": "fp32" if precision == "float32" else "fp64",
                "platform": gpu,
                "efficiency": efficiency(mojo.bandwidth_gbs, base.bandwidth_gbs),
            })
    return samples


def _babelstream_samples(quick: bool) -> List[Dict]:
    samples = []
    for gpu, baseline in PLATFORMS:
        mojo = BabelStreamBenchmark(backend="mojo", gpu=gpu, num_times=3).run(verify=False)
        base = BabelStreamBenchmark(backend=baseline, gpu=gpu, num_times=3).run(verify=False)
        for op in BABELSTREAM_OPS:
            samples.append({
                "configuration": op,
                "platform": gpu,
                "efficiency": efficiency(mojo.bandwidths_gbs[op],
                                         base.bandwidths_gbs[op]),
            })
    return samples


def _minibude_samples(quick: bool) -> List[Dict]:
    samples = []
    configs = ((8, 8, "PPWI=8 wg=8"), (4, 64, "PPWI=4 wg=64"))
    for gpu, baseline in PLATFORMS:
        for ppwi, wg, label in configs:
            mojo = run_minibude(ppwi=ppwi, wgsize=wg, backend="mojo", gpu=gpu,
                                verify=False)
            base = run_minibude(ppwi=ppwi, wgsize=wg, backend=baseline, gpu=gpu,
                                fast_math=True, verify=False)
            samples.append({
                "configuration": label,
                "platform": gpu,
                "efficiency": efficiency(mojo.gflops, base.gflops),
            })
    return samples


def _hartreefock_samples(quick: bool) -> List[Dict]:
    samples = []
    rows = ((256, 3), (128, 3), (64, 3)) if quick else \
           ((1024, 6), (256, 3), (128, 3), (64, 3))
    for gpu, baseline in PLATFORMS:
        for natoms, ngauss in rows:
            mojo = run_hartreefock(natoms=natoms, ngauss=ngauss, backend="mojo",
                                   gpu=gpu, verify=False)
            base = run_hartreefock(natoms=natoms, ngauss=ngauss, backend=baseline,
                                   gpu=gpu, verify=False)
            samples.append({
                "configuration": f"a={natoms} ngauss={ngauss}",
                "platform": gpu,
                "efficiency": efficiency(mojo.kernel_time_ms, base.kernel_time_ms,
                                         higher_is_better=False),
            })
    return samples


def run(*, quick: bool = True) -> ExperimentResult:
    """Regenerate Table 5."""
    result = ExperimentResult(EXPERIMENT_ID, DESCRIPTION)
    workloads = {
        "stencil": _stencil_samples(quick),
        "babelstream": _babelstream_samples(quick),
        "minibude": _minibude_samples(quick),
        "hartreefock": _hartreefock_samples(quick),
    }

    table = ResultTable(
        columns=["workload", "configuration", "platform", "efficiency"],
        title="Mojo efficiency vs vendor baseline, and per-workload Φ",
    )
    phis = {}
    for name, samples in workloads.items():
        portability: PortabilityResult = portability_from_entries(name, samples)
        phis[name] = portability.phi
        for row in portability.to_rows():
            table.add_row(**row)
    result.add_table(table)

    # The paper's Φ tolerances: the Hartree-Fock Φ mixes >1 and ~0 efficiencies
    # (the paper itself calls it misleading), so it gets a wider band.
    for name, phi in phis.items():
        tol = 0.35 if name in ("minibude", "hartreefock") else 0.15
        result.add_comparison(ratio_comparison(
            f"Φ({name})", phi, TABLE5_PHI[name], rel_tol=tol,
        ))
    result.notes.append(
        "Φ uses the arithmetic-mean 'application efficiency' definition of Eq. 4; "
        "the harmonic-mean variant is available via PortabilityResult.phi_harmonic."
    )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run(quick=False).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
