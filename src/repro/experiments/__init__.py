"""One experiment module per table/figure of the paper's evaluation.

Every module exposes ``run(**options) -> ExperimentResult`` plus module
constants ``EXPERIMENT_ID`` and ``DESCRIPTION``.  The registry below maps the
paper artifact identifiers to those runners for the CLI and the benchmark
suite.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.errors import ConfigurationError
from ..harness.results import ExperimentResult
from . import (
    fig2_roofline,
    fig3_stencil,
    fig4_babelstream,
    fig5_sass,
    fig6_minibude_h100,
    fig7_minibude_mi300a,
    table2_stencil_ncu,
    table3_babelstream_ncu,
    table4_hartreefock,
    table5_portability,
)

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments", "run_all"]

#: experiment id -> module
EXPERIMENTS = {
    module.EXPERIMENT_ID: module
    for module in (
        fig2_roofline,
        fig3_stencil,
        fig4_babelstream,
        fig5_sass,
        fig6_minibude_h100,
        fig7_minibude_mi300a,
        table2_stencil_ncu,
        table3_babelstream_ncu,
        table4_hartreefock,
        table5_portability,
    )
}


def list_experiments() -> List[str]:
    """Identifiers of all registered experiments, in paper order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, **options) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig3"`` or ``"table4"``)."""
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {list_experiments()}"
        )
    return EXPERIMENTS[key].run(**options)


def run_all(**options) -> Dict[str, ExperimentResult]:
    """Run every experiment; returns a dict keyed by experiment id."""
    return {key: module.run(**options) for key, module in EXPERIMENTS.items()}
