"""Figure 2 — roofline placement of the four workloads on the H100.

The paper obtains Figure 2 with NVIDIA Nsight on the CUDA implementations;
here the same placement is derived from the profiled counters of the
simulated CUDA runs.  The check is the figure's message: stencil and
BabelStream sit in the memory-bound region, miniBUDE and Hartree–Fock in the
compute-bound region.
"""

from __future__ import annotations

from ..backends import get_backend
from ..core.kernel import LaunchConfig
from ..gpu.roofline import Roofline, classify_workload
from ..harness.compare import qualitative_comparison
from ..harness.paper_data import FIGURE_EXPECTATIONS
from ..harness.results import ExperimentResult, ResultTable
from ..kernels.babelstream import babelstream_kernel_model
from ..kernels.hartreefock import hartree_fock_kernel_model
from ..kernels.minibude import fasten_kernel_model, minibude_launch_config
from ..kernels.stencil import stencil_kernel_model, stencil_launch_config
from ..profiling.counters import collect_counters

EXPERIMENT_ID = "fig2"
DESCRIPTION = "Roofline placement of the four workloads on NVIDIA H100"

#: expected region per workload (the paper's Figure 2 message)
EXPECTED_REGION = {
    "seven_point_stencil": "memory-bound",
    "babelstream_triad": "memory-bound",
    "minibude_fasten": "compute-bound",
    "hartree_fock_eri": "compute-bound",
}


def _workload_runs(gpu: str = "h100"):
    """(name, model, launch) triples for the four workloads on *gpu*."""
    stencil_model = stencil_kernel_model(L=512, precision="float64")
    stencil_launch = stencil_launch_config(512, (512, 1, 1))

    triad_model = babelstream_kernel_model("triad", n=2 ** 25, precision="float64")
    triad_launch = LaunchConfig.for_elements(2 ** 25, 1024)

    bude_model = fasten_kernel_model(ppwi=2, natlig=26, natpro=938, wgsize=64)
    bude_launch = minibude_launch_config(65536, 2, 64)

    hf_model = hartree_fock_kernel_model(natoms=64, ngauss=3,
                                         surviving_fraction=0.4)
    hf_launch = LaunchConfig.for_elements(64 * 65 // 2 * (64 * 65 // 2 + 1) // 2, 256)

    return [
        ("seven_point_stencil", stencil_model, stencil_launch),
        ("babelstream_triad", triad_model, triad_launch),
        ("minibude_fasten", bude_model, bude_launch),
        ("hartree_fock_eri", hf_model, hf_launch),
    ]


def run(*, gpu: str = "h100", backend: str = "cuda", quick: bool = True) -> ExperimentResult:
    """Regenerate Figure 2."""
    result = ExperimentResult(EXPERIMENT_ID, DESCRIPTION)
    roofline = Roofline(gpu)
    be = get_backend(backend)

    table = ResultTable(
        columns=["workload", "precision", "ai_dram_flop_per_byte",
                 "achieved_gflops", "attainable_gflops", "region"],
        title=f"Roofline points on {roofline.spec.full_name} ({be.display_name})",
    )

    classifications = {}
    for name, model, launch in _workload_runs(gpu):
        fast_math = be.fast_math_available
        run_ = be.time(model, gpu, launch, fast_math=fast_math)
        counters = collect_counters(run_)
        point = roofline.place(
            name,
            flops=counters.total_flops,
            bytes_moved=counters.dram_bytes,
            time_s=run_.timing.kernel_time_s,
            precision=model.dtype.name,
        )
        region = classify_workload(point, roofline)
        classifications[name] = region
        table.add_row(
            workload=name,
            precision=model.dtype.name,
            ai_dram_flop_per_byte=point.arithmetic_intensity,
            achieved_gflops=point.gflops,
            attainable_gflops=roofline.attainable(point.arithmetic_intensity,
                                                  model.dtype.name) / 1e9,
            region=region,
        )
    result.add_table(table)

    for name, expected in EXPECTED_REGION.items():
        result.add_comparison(qualitative_comparison(
            f"{name} is {expected}",
            classifications[name] == expected,
            detail=f"classified as {classifications[name]}",
        ))
    result.notes.append(FIGURE_EXPECTATIONS["fig2"])
    result.notes.append(
        f"ridge point at {roofline.ridge_point('float64'):.2f} FLOP/byte (FP64)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
