"""``DeviceContext``, ``Stream``, ``Event`` and ``DeviceGraph``: the
Mojo-style asynchronous device runtime API.

This is the user-facing entry point that the paper's Listing 1 demonstrates,
extended with the stream/event/graph machinery a real device queue offers:

.. code-block:: python

    ctx = DeviceContext("h100")
    d_u = ctx.enqueue_create_buffer(DType.float32, nx)
    u = LayoutTensor(DType.float32, Layout.row_major(nx), d_u)
    ctx.enqueue_function(fill_one, u, grid_dim=num_blocks, block_dim=block_size)
    ctx.synchronize()

Every ``enqueue_*`` operation lands on a :class:`Stream` (the context's
default stream unless ``stream=`` names another one).  Streams are FIFO;
cross-stream ordering is expressed with :class:`Event`::

    h2d, compute = ctx.stream("h2d"), ctx.stream("compute")
    d_u.copy_from_host(host, stream=h2d)
    uploaded = ctx.event("uploaded").record(h2d)
    compute.wait(uploaded)
    ctx.enqueue_function(kern, u, ..., stream=compute)

In ``eager=True`` contexts (the default, convenient for tests and examples)
operations execute at enqueue; with ``eager=False`` they are queued — in
every case *ordered with the kernels of their stream* — and run at
:meth:`DeviceContext.synchronize`, which executes the resulting dependency
DAG in enqueue order (a valid topological order, since an event can only be
waited on after it was recorded).

Timing is overlap-aware: each executed operation occupies a lane of its
stream on the modelled timeline (``start_ms``/``end_ms`` per
:class:`StreamEvent`), so :attr:`DeviceContext.elapsed_ms` reports the
critical-path makespan of the whole pipeline — H2D copies, kernels, memsets
and D2H copies on different streams overlap — while
:attr:`DeviceContext.serial_time_ms` keeps the serial sum.
:meth:`DeviceContext.pipeline_breakdown` summarises both plus the per-stream
busy time as a :class:`PipelineTiming`.

Finally, :meth:`DeviceContext.capture` records an enqueue sequence once into
a replayable :class:`DeviceGraph`::

    with ctx.capture("step") as graph:
        d_u.copy_from_host(u0)
        ctx.enqueue_function(kern, ..., grid_dim=g, block_dim=b)
        d_f.copy_to_host()
    out = graph.replay(u=u1)["f"]      # re-run with new buffer contents

Replay skips all per-enqueue Python work (argument normalisation, launch
validation, modelled-time prediction, per-op bookkeeping), which is what
amortises host-side launch overhead across sweep repeats.
"""

from __future__ import annotations

import itertools
import sys
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gpu.executor import ExecutionResult, KernelExecutor
from ..gpu.memory import Allocation, AllocationTracker, MemorySpace, TransferModel
from ..gpu.specs import GPUSpec, get_gpu
from ..obs import trace as _trace
from ..resilience import faults as _faults
from .dtypes import DType, dtype_from_any
from .errors import DeviceError, LaunchError
from .intrinsics import Dim3
from .kernel import Kernel, KernelModel, LaunchConfig
from .layout import Layout, LayoutTensor

__all__ = ["DeviceBuffer", "DeviceContext", "DeviceGraph", "Event",
           "PipelineTiming", "Stream", "StreamEvent"]


class DeviceBuffer:
    """A typed, flat allocation in simulated device memory."""

    _ids = itertools.count(1)

    def __init__(self, ctx: "DeviceContext", dtype, count: int, *, label: str = ""):
        self.ctx = ctx
        self.dtype: DType = dtype_from_any(dtype)
        self.count = int(count)
        self.label = label or f"buffer{next(self._ids)}"
        self._allocation: Allocation = ctx._tracker.allocate(
            self.count, self.dtype, label=self.label
        )
        self.array = np.zeros(self.count, dtype=self.dtype.to_numpy())
        self._freed = False

    # ------------------------------------------------------------ properties
    @property
    def nbytes(self) -> int:
        return self.count * self.dtype.sizeof

    @property
    def freed(self) -> bool:
        return self._freed

    # -------------------------------------------------------------- transfers
    def copy_from_host(self, host_array, *,
                       stream: Optional["Stream"] = None) -> "DeviceBuffer":
        """Copy host data into the buffer (modelled H2D transfer).

        The host array is validated and snapshotted immediately; the copy
        itself is enqueued on *stream*, so in an ``eager=False`` context it
        executes at :meth:`DeviceContext.synchronize`, ordered with the
        kernels of its stream.
        """
        self._check_live()
        src = np.asarray(host_array, dtype=self.dtype.to_numpy()).reshape(-1)
        if src.size != self.count:
            raise DeviceError(
                f"host array has {src.size} elements, buffer holds {self.count}"
            )
        if not self.ctx.eager or self.ctx._capture is not None:
            # Snapshot only when the write is deferred (lazy queue / graph
            # capture): the caller may mutate their array before it runs.
            # Eager copies execute immediately, so the extra O(n) host copy
            # would be pure waste on the default path.
            src = src.copy()

        def work() -> None:
            self.array[...] = src

        self.ctx._submit_transfer("h2d", self, work, stream, src=src,
                                  sink=self.array)
        return self

    def copy_to_host(self, out: Optional[np.ndarray] = None, *,
                     stream: Optional["Stream"] = None) -> Optional[np.ndarray]:
        """Copy the buffer back to the host (modelled D2H transfer).

        Returns the destination array.  In an ``eager=False`` context the
        copy is *enqueued*: the returned array holds the data only after
        :meth:`DeviceContext.synchronize` has run the queue.  During graph
        capture the call only *registers* the download — data is delivered
        by :meth:`DeviceGraph.replay`'s outputs dict — so it returns
        ``None`` (and rejects ``out=``, which would silently never be
        written).
        """
        self._check_live()
        if out is None:
            if self.ctx._capture is not None:
                self.ctx._submit_transfer("d2h", self, _noop, stream)
                return None
            np_dtype = self.dtype.to_numpy()
            if self.ctx.eager:
                dest = np.empty(self.count, dtype=np_dtype)  # filled below
            else:
                # deferred fill: a caller reading before synchronize() sees
                # a loud sentinel (NaN / zeros), not recycled heap memory
                sentinel = np.nan if np.issubdtype(np_dtype, np.floating) else 0
                dest = np.full(self.count, sentinel, dtype=np_dtype)
            ret: np.ndarray = dest
        else:
            if self.ctx._capture is not None:
                # A captured D2H delivers through the replay outputs dict;
                # the caller's array would silently never be written.
                raise DeviceError(
                    "copy_to_host(out=...) is not supported during graph "
                    "capture; read the buffer from DeviceGraph.replay()'s "
                    "outputs instead"
                )
            dest = np.asarray(out).reshape(-1)
            if dest.size != self.count:
                raise DeviceError("output array size mismatch")
            if not np.shares_memory(dest, out):
                # reshape(-1) of e.g. an F-order matrix or a list returns a
                # copy; writing into it would silently leave `out` untouched
                raise DeviceError(
                    "output array must be a C-contiguous ndarray (the copy "
                    "writes through a flat view of it)"
                )
            ret = out

        def work() -> None:
            dest[...] = self.array

        self.ctx._submit_transfer("d2h", self, work, stream, sink=dest)
        return ret

    def fill(self, value, *, stream: Optional["Stream"] = None) -> "DeviceBuffer":
        """Fill the buffer with a scalar value (modelled memset, enqueued)."""
        self.ctx.enqueue_fill(self, value, stream=stream)
        return self

    # ------------------------------------------------------------------ views
    def tensor(self, layout: Optional[Layout] = None, *, mut: bool = True,
               bounds_check: bool = True) -> LayoutTensor:
        """Create a :class:`LayoutTensor` view over this buffer."""
        self._check_live()
        layout = layout or Layout.row_major(self.count)
        return LayoutTensor(self.dtype, layout, self, mut=mut,
                            bounds_check=bounds_check, name=self.label)

    # ----------------------------------------------------------------- free
    def free(self) -> None:
        """Release the allocation (idempotent frees raise DeviceError).

        Work already enqueued against the buffer raises
        :class:`DeviceError` when it later executes (use-after-free of a
        pending operation).
        """
        self._check_live()
        self.ctx._tracker.free(self._allocation)
        self._freed = True

    def _check_live(self) -> None:
        if self._freed:
            raise DeviceError(f"use of freed buffer {self.label!r}")

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeviceBuffer({self.label}, {self.dtype.name}[{self.count}])"


@dataclass
class StreamEvent:
    """One entry in the context's executed-operation timeline.

    ``start_ms``/``end_ms`` place the operation on its stream's lane of the
    modelled timeline; ``modelled_time_ms`` is its duration.
    """

    kind: str                      # "kernel" | "h2d" | "d2h" | "memset" | "event" | "graph"
    name: str
    modelled_time_ms: float = 0.0
    execution: Optional[ExecutionResult] = None
    details: dict = field(default_factory=dict)
    stream: str = "default"
    start_ms: float = 0.0
    end_ms: float = 0.0


class Event:
    """A stream marker, as in CUDA/HIP: record on one stream, wait on another.

    ``record(stream)`` enqueues the marker; once it has *executed* (at
    enqueue in eager contexts, at ``synchronize()`` otherwise) its
    :meth:`elapsed_ms` reports the modelled timeline timestamp at which all
    preceding work on the recording stream completed.  ``stream.wait(event)``
    makes subsequently enqueued work on that stream start no earlier than the
    event's timestamp.
    """

    _ids = itertools.count(1)

    def __init__(self, ctx: "DeviceContext", name: str = ""):
        self.ctx = ctx
        self.name = name or f"event{next(self._ids)}"
        self._stream: Optional["Stream"] = None
        self._timestamp_ms: Optional[float] = None

    # ------------------------------------------------------------------ state
    @property
    def recorded(self) -> bool:
        """True once :meth:`record` has enqueued the marker."""
        return self._stream is not None

    @property
    def complete(self) -> bool:
        """True once the marker has executed and carries a timestamp."""
        return self._timestamp_ms is not None

    # ------------------------------------------------------------------- api
    def record(self, stream: Optional["Stream"] = None) -> "Event":
        """Enqueue this marker on *stream* (default stream when omitted)."""
        stream = self.ctx._resolve_stream(stream)
        self._stream = stream
        self._timestamp_ms = None
        self.ctx._recorded_events.add(self)
        op = _Op("event", self.name, stream, stream._take_waits(), (),
                 _zero_work, self)
        self.ctx._submit(op)
        return self

    def elapsed_ms(self, since: Optional["Event"] = None) -> float:
        """Modelled timestamp (ms) at which this event completed.

        With *since*, the interval between the two events — the stream-level
        analogue of ``cudaEventElapsedTime``.  Raises :class:`DeviceError`
        for an event that has not executed yet (record it, then
        ``synchronize()`` in lazy contexts).
        """
        if self._timestamp_ms is None:
            state = "recorded but not executed" if self.recorded \
                else "never recorded"
            raise DeviceError(
                f"event {self.name!r} has no timestamp ({state}); "
                f"synchronize() the context first"
            )
        if since is not None:
            if since.ctx is not self.ctx:
                # timestamps from different contexts live on unrelated
                # modelled timelines; their difference is meaningless
                raise DeviceError(
                    f"event {since.name!r} does not belong to the same "
                    f"context as {self.name!r}"
                )
            return self._timestamp_ms - since.elapsed_ms()
        return self._timestamp_ms

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event({self.name}, complete={self.complete})"


class Stream:
    """One FIFO lane of a :class:`DeviceContext`.

    Operations enqueued on the same stream execute (and are timed) in
    order; operations on different streams are independent unless ordered
    through :meth:`wait` on an :class:`Event`.
    """

    def __init__(self, ctx: "DeviceContext", name: str, index: int):
        self.ctx = ctx
        self.name = name
        self.index = index
        #: modelled completion time (ms) of the last executed op on this lane
        self._clock_ms = 0.0
        #: events the *next* enqueued op must wait for (FIFO ordering then
        #: carries the dependency to everything behind it)
        self._waits: List[Event] = []

    def wait(self, event: Event) -> "Stream":
        """Order subsequently enqueued work after *event*."""
        if not isinstance(event, Event):
            raise DeviceError(f"stream.wait expects an Event, got {event!r}")
        if event.ctx is not self.ctx:
            # a foreign timestamp would leak another context's absolute
            # timeline into this one's clocks
            raise DeviceError(
                f"event {event.name!r} does not belong to this context"
            )
        if not event.recorded:
            raise DeviceError(
                f"cannot wait on event {event.name!r}: it was never recorded"
            )
        self._waits.append(event)
        return self

    def _take_waits(self) -> Tuple[Event, ...]:
        if not self._waits:
            return ()
        waits, self._waits = tuple(self._waits), []
        return waits

    def synchronize(self) -> "Stream":
        """Drain the context queue (global: the DAG is executed whole)."""
        self.ctx.synchronize()
        return self

    @property
    def busy_ms(self) -> float:
        """Total modelled time of executed operations on this lane."""
        return sum(e.modelled_time_ms for e in self.ctx.timeline
                   if e.stream == self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stream({self.name!r}, clock={self._clock_ms:.3f}ms)"


def _zero_work() -> Tuple[float, Optional[ExecutionResult], dict]:
    return 0.0, None, {}


def _noop() -> None:
    """Placeholder work for ops whose effect exists only at graph replay."""


class _Op:
    """One enqueued device operation: a DAG node awaiting execution.

    ``reads`` / ``writes`` are the operation's declared buffer access sets
    (None: derived from ``kind``/``meta`` by consumers — see
    :func:`repro.analysis.racecheck._op_accesses`); ``site`` is the
    user-code enqueue location, captured only when the context records
    sites (lint / strict mode), so the default enqueue path pays nothing.
    """

    __slots__ = ("kind", "name", "stream", "waits", "buffers", "work",
                 "event", "meta", "reads", "writes", "site")

    def __init__(self, kind: str, name: str, stream: Stream,
                 waits: Tuple[Event, ...], buffers: Tuple[DeviceBuffer, ...],
                 work: Callable[[], Tuple[float, Optional[ExecutionResult], dict]],
                 event: Optional[Event] = None,
                 meta: Optional[dict] = None,
                 reads: Optional[Tuple[DeviceBuffer, ...]] = None,
                 writes: Optional[Tuple[DeviceBuffer, ...]] = None):
        self.kind = kind
        self.name = name
        self.stream = stream
        self.waits = waits
        self.buffers = buffers
        self.work = work
        self.event = event
        self.meta = meta
        self.reads = reads
        self.writes = writes
        self.site = None


@dataclass
class PipelineTiming:
    """Overlap-aware summary of a context's executed timeline.

    ``elapsed_ms`` is the critical-path makespan across all stream lanes;
    ``serial_ms`` the sum every operation would cost back-to-back on one
    stream.  Their difference is the modelled time the overlap saved.
    """

    elapsed_ms: float
    serial_ms: float
    lanes: Dict[str, float]
    operations: int

    @property
    def overlap_saved_ms(self) -> float:
        return max(self.serial_ms - self.elapsed_ms, 0.0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "elapsed_ms": self.elapsed_ms,
            "serial_ms": self.serial_ms,
            "overlap_saved_ms": self.overlap_saved_ms,
            "lanes": dict(self.lanes),
            "operations": self.operations,
        }


class DeviceGraph:
    """A captured enqueue sequence, replayable with new buffer contents.

    Built by :meth:`DeviceContext.capture`.  :meth:`replay` re-executes the
    recorded operations — H2D sources may be rebound by buffer label — and
    returns the D2H outputs keyed by buffer label.  The modelled cost of a
    replay is the graph's cached critical-path makespan, recorded on the
    timeline as a single ``"graph"`` event.
    """

    _ids = itertools.count(1)

    def __init__(self, ctx: "DeviceContext", name: str = ""):
        self.ctx = ctx
        self.name = name or f"graph{next(self._ids)}"
        self._ops: List[_Op] = []
        self._compiled = False
        self._steps: List[Tuple[str, tuple]] = []
        self._h2d_specs: Dict[str, Tuple[DeviceBuffer, object]] = {}
        self._buffers: Tuple[DeviceBuffer, ...] = ()
        self._streams: Tuple[Stream, ...] = ()
        self._event_offsets: List[Tuple[Event, float]] = []
        self._lane_busy_ms: Dict[str, float] = {}
        self._lane_end_ms: Dict[str, float] = {}
        #: per-stream op schedule (kind/name/start/duration), recorded once
        #: at compile time so trace export can expand a replay's summary
        #: event into its constituent operations without re-simulating.
        self._trace_schedule: Dict[str, List[dict]] = {}
        self._makespan_ms = 0.0
        self._kernels = 0
        self.replays = 0
        #: labels whose H2D upload was hoisted out of the replay loop by the
        #: graph optimizer (see :mod:`repro.graphopt`); binding one at replay
        #: raises, because the upload no longer runs per-replay.
        self._pinned: frozenset = frozenset()

    # ------------------------------------------------------------ properties
    @property
    def num_operations(self) -> int:
        return len(self._ops)

    @property
    def ops(self) -> Tuple[_Op, ...]:
        """The captured operation list (read-only view).

        This is the graph IR the optimizer passes in
        :mod:`repro.graphopt` analyze; elided operations stay in the list
        as tombstones (``op.meta["elided"]``) so inspection tools can show
        what a pass removed, while :meth:`_compile` skips them.
        """
        return tuple(self._ops)

    def rewritten(self, ops: Sequence[_Op], *,
                  name: Optional[str] = None) -> "DeviceGraph":
        """A new compiled graph over *ops*, on the same context.

        The transform API the graph optimizer builds on: passes produce a
        rewritten op list (fused kernels, tombstoned transfers) and this
        method re-lowers it into replay steps and a fresh cached makespan.
        The receiver is left untouched, so the unoptimized capture stays
        replayable for bit-identity comparison.
        """
        if not self._compiled:
            raise DeviceError(
                f"graph {self.name!r} is still capturing; close the "
                f"capture block before rewriting"
            )
        new = DeviceGraph(self.ctx, name or f"{self.name}+opt")
        new._ops = list(ops)
        new._compile()
        return new

    @property
    def num_kernels(self) -> int:
        return self._kernels

    @property
    def makespan_ms(self) -> float:
        """Cached critical-path duration of one replay."""
        return self._makespan_ms

    @property
    def input_labels(self) -> Tuple[str, ...]:
        """Buffer labels whose H2D source may be rebound at replay."""
        return tuple(self._h2d_specs)

    # -------------------------------------------------------------- capture
    def _record(self, op: _Op) -> None:
        self._ops.append(op)

    def _compile(self) -> None:
        """Lower the captured ops into replay steps and the cached makespan.

        Runs once, when the capture block closes: per-op modelled durations
        (and the kernel time predictions behind them) are paid here instead
        of on every replay.
        """
        steps: List[Tuple[str, tuple]] = []
        clocks: Dict[str, float] = {}
        busy: Dict[str, float] = {}
        buffers: Dict[int, DeviceBuffer] = {}
        streams: Dict[str, Stream] = {}
        ctx = self.ctx
        for op in self._ops:
            meta = op.meta or {}
            if meta.get("elided"):
                # Tombstone left by a graphopt pass: the op stays in the IR
                # for inspection/provenance but contributes no replay step,
                # no makespan time and no live-buffer requirement.
                continue
            streams[op.stream.name] = op.stream
            for buf in op.buffers:
                buffers[id(buf)] = buf
            duration = meta.get("duration_ms", 0.0)
            if op.kind == "kernel":
                self._kernels += 1
                timing = meta.get("timing")
                model = meta.get("model")
                if timing is not None:
                    duration = float(getattr(timing, "kernel_time_ms", timing))
                elif model is not None:
                    duration = ctx._predict_time(model, meta["launch"])
                # Pre-instantiated launch thunk: validation and mode
                # resolution are paid once here, not on every replay.
                steps.append(("kernel", ctx._executor.instantiate(
                    meta["kern"], meta["args"], meta["launch"],
                    mode=meta["mode"])))
            elif op.kind == "h2d":
                buf = op.buffers[0]
                if buf.label in self._h2d_specs:
                    # Two uploads under one label — whether into one buffer
                    # (a mid-graph re-seed) or into two buffers sharing a
                    # label — would make a replay binding for that label
                    # silently rebind both copies, changing the captured
                    # semantics.
                    raise DeviceError(
                        f"graph {self.name!r} captured two H2D copies under "
                        f"the label {buf.label!r}; replay bindings are keyed "
                        f"by label — upload once, or use distinctly-labelled "
                        f"buffers"
                    )
                self._h2d_specs[buf.label] = (buf, meta["src"])
                steps.append(("h2d", (buf, buf.label, meta["src"])))
            elif op.kind == "d2h":
                buf = op.buffers[0]
                if any(k == "d2h" and p[0].label == buf.label
                       for k, p in steps):
                    # Two downloads of one label — whether of the same buffer
                    # (an intermediate snapshot) or of two buffers sharing a
                    # label — would silently collapse to the last copy in the
                    # label-keyed outputs dict.
                    raise DeviceError(
                        f"graph {self.name!r} captured two D2H copies under "
                        f"the label {buf.label!r}; replay outputs are keyed "
                        f"by label — copy once, or use distinctly-labelled "
                        f"buffers"
                    )
                steps.append(("d2h", (buf,)))
            elif op.kind == "memset":
                steps.append(("memset", (op.buffers[0], meta["value"])))
            # "event" ops contribute only to the makespan computation below
            start = clocks.get(op.stream.name, 0.0)
            for ev in op.waits:
                # reversed: a wait observes the *latest* record of the event
                # that precedes it in the capture, as on a real stream
                marker = next((off for e, off in reversed(self._event_offsets)
                               if e is ev), None)
                if marker is None:
                    # Same rule as CUDA stream capture: a captured wait must
                    # target an event recorded inside the capture, otherwise
                    # the declared dependency would silently vanish from the
                    # replayed DAG and its makespan.
                    raise DeviceError(
                        f"graph {self.name!r} waits on event {ev.name!r}, "
                        f"which was not recorded inside the capture"
                    )
                start = max(start, marker)
            if op.kind == "event":
                self._event_offsets.append((op.event, start))
            else:
                # Trace-export schedule: paid once per compile, never on
                # replay, so the hot path stays collector-free.
                self._trace_schedule.setdefault(op.stream.name, []).append(
                    {"kind": op.kind, "name": op.name,
                     "start_ms": start, "duration_ms": duration})
            clocks[op.stream.name] = start + duration
            busy[op.stream.name] = busy.get(op.stream.name, 0.0) + duration
        self._steps = steps
        self._buffers = tuple(buffers.values())
        self._streams = tuple(streams.values()) or (ctx.default_stream,)
        # busy = sum of op durations per lane (wait-induced idle excluded);
        # end = the lane's completion offset including that idle
        self._lane_busy_ms = busy
        self._lane_end_ms = dict(clocks)
        self._makespan_ms = max(clocks.values(), default=0.0)
        self._compiled = True

    # --------------------------------------------------------------- replay
    def replay(self, **bindings) -> Dict[str, np.ndarray]:
        """Execute the captured sequence with *bindings* as new H2D sources.

        Keyword names select input buffers by label; unbound inputs re-use
        the host data snapshotted at capture.  Returns ``{label: array}``
        for every captured D2H copy.  Raises :class:`DeviceError` for an
        unknown binding or a freed buffer.
        """
        collector = _trace._ACTIVE
        if collector is None:
            return self._replay_impl(bindings, None)
        with collector.span("graph.replay", graph=self.name,
                            kernels=self._kernels,
                            operations=len(self._steps)) as sp:
            sp.set_modelled(self._makespan_ms)
            return self._replay_impl(bindings, collector)

    def _replay_impl(self, bindings: Dict[str, object],
                     collector) -> Dict[str, np.ndarray]:
        if not self._compiled:
            raise DeviceError(
                f"graph {self.name!r} is still capturing; close the "
                f"capture block before replaying"
            )
        if self.ctx._capture is not None:
            # Graph-in-graph recording is not supported: executing here
            # would silently run work at capture time and omit it from the
            # capturing graph.
            raise DeviceError(
                f"cannot replay graph {self.name!r} while a capture is "
                f"active on the context"
            )
        if self.ctx._pending:
            # A replay is ordered after previously enqueued work, exactly
            # like any other submission — drain the queue so the graph sees
            # up-to-date buffer contents.
            self.ctx.synchronize()
        unknown = set(bindings) - set(self._h2d_specs)
        if unknown:
            pinned = unknown & self._pinned
            if pinned:
                raise DeviceError(
                    f"graph {self.name!r} input(s) {sorted(pinned)} were "
                    f"pinned by the hoist-invariant-transfers pass; their "
                    f"upload runs once at optimization time and cannot be "
                    f"rebound at replay (re-optimize without pinning them)"
                )
            raise DeviceError(
                f"graph {self.name!r} has no input buffer(s) "
                f"{sorted(unknown)}; known inputs: {sorted(self._h2d_specs)}"
            )
        for buf in self._buffers:
            if buf.freed:
                raise DeviceError(
                    f"replay of graph {self.name!r} uses freed buffer "
                    f"{buf.label!r}"
                )
        sources: Dict[str, object] = {}
        for label, value in bindings.items():
            buf, _ = self._h2d_specs[label]
            src = np.asarray(value, dtype=buf.dtype.to_numpy()).reshape(-1)
            if src.size != buf.count:
                raise DeviceError(
                    f"binding {label!r} has {src.size} elements, buffer "
                    f"holds {buf.count}"
                )
            sources[label] = src

        outputs: Dict[str, np.ndarray] = {}
        for kind, payload in self._steps:
            if kind == "kernel":
                payload()
            elif kind == "h2d":
                buf, label, captured = payload
                buf.array[...] = sources.get(label, captured)
            elif kind == "d2h":
                buf, = payload
                outputs[buf.label] = buf.array.copy()
            else:  # memset
                buf, value = payload
                buf.array[...] = value

        self.replays += 1
        start = max(s._clock_ms for s in self._streams)
        end = start + self._makespan_ms
        for ev, offset in self._event_offsets:
            ev._timestamp_ms = start + offset
        details = {"operations": len(self._steps), "kernels": self._kernels,
                   "replay": self.replays}
        # One summary event per captured stream, so per-lane accounting
        # (ctx.lanes / pipeline_breakdown) stays truthful for multi-stream
        # graphs: modelled time is the lane's *busy* time (wait idle
        # excluded, keeping serial_ms honest), end_ms its true completion
        # offset (keeping elapsed_ms = makespan).  Every lane's clock still
        # advances to the graph's end — a graph completes as a unit.
        for s in self._streams:
            det = details
            if collector is not None:
                # Traced replays carry the compile-time op schedule so the
                # exporter can expand the summary slice; untraced replays
                # share one details dict and pay nothing extra.
                det = dict(details,
                           schedule=self._trace_schedule.get(s.name, ()))
            self.ctx.timeline.append(StreamEvent(
                "graph", self.name, self._lane_busy_ms.get(s.name, 0.0),
                None, det, stream=s.name, start_ms=start,
                end_ms=start + self._lane_end_ms.get(s.name, 0.0)))
            s._clock_ms = end
        return outputs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DeviceGraph({self.name}, ops={self.num_operations}, "
                f"kernels={self.num_kernels}, replays={self.replays})")


class _GraphCapture:
    """Context manager returned by :meth:`DeviceContext.capture`."""

    def __init__(self, ctx: "DeviceContext", name: str, check: bool = False):
        self.ctx = ctx
        self.check = bool(check)
        self.graph = DeviceGraph(ctx, name)
        self._saved_record_sites = False

    def __enter__(self) -> DeviceGraph:
        if self.ctx._capture is not None:
            raise DeviceError("a device-graph capture is already active")
        self.ctx._capture = self.graph
        if self.check:
            # checked captures get enqueue sites for free, so a finding can
            # name the line that issued the racy op
            self._saved_record_sites = self.ctx.record_sites
            self.ctx.record_sites = True
        return self.graph

    def __exit__(self, exc_type, exc, tb) -> None:
        self.ctx._capture = None
        if self.check:
            self.ctx.record_sites = self._saved_record_sites
        if exc_type is None:
            self.graph._compile()
            if self.check:
                self._race_check()

    def _race_check(self) -> None:
        # Local import: the analysis package consumes this module.
        from .errors import AnalysisError
        from ..analysis.racecheck import analyze_graph

        errors = [d for d in analyze_graph(self.graph)
                  if d.severity == "error"]
        if errors:
            findings = "\n".join(f"  {d}" for d in errors)
            raise AnalysisError(
                f"captured graph {self.graph.name!r} failed the race "
                f"check:\n{findings}"
            )


#: fraction of peak DRAM bandwidth a device-side memset achieves
_MEMSET_EFFICIENCY = 0.85


class DeviceContext:
    """A simulated GPU device queue, mirroring Mojo's ``DeviceContext``.

    Parameters
    ----------
    gpu:
        GPU name (``"h100"``, ``"mi300a"`` ...) or a :class:`GPUSpec`.
    eager:
        When True (default) enqueued work executes immediately;
        when False it runs at :meth:`synchronize`, matching a real stream.
        Either way the modelled timeline is stream/event-aware.
    executor:
        Optional custom :class:`KernelExecutor` (tests inject small limits).
    """

    #: process-wide default for ``record_sites``.  ``repro lint`` flips
    #: this on around workload graph captures so contexts the workloads
    #: construct internally record enqueue sites too, giving the race
    #: diagnostics user-code ``file:line`` attribution without every
    #: workload having to thread the flag through.
    default_record_sites: bool = False

    def __init__(self, gpu="h100", *, eager: bool = True,
                 executor: Optional[KernelExecutor] = None,
                 record_sites: bool = False):
        self.spec: GPUSpec = get_gpu(gpu)
        self.eager = bool(eager)
        #: when True every enqueue captures its user-code ``file:line`` on
        #: the op (one frame walk per enqueue) so diagnostics — notably
        #: use-after-free at drain time — can name where the bad op was
        #: issued.  Off by default: the hot enqueue path pays nothing.
        self.record_sites = bool(record_sites) or type(self).default_record_sites
        self._tracker = AllocationTracker(self.spec)
        self._transfer_model = TransferModel(self.spec)
        self._executor = executor or KernelExecutor()
        self._streams: Dict[str, Stream] = {}
        self.default_stream: Stream = self.stream("default")
        self._pending: List[_Op] = []
        self._capture: Optional[DeviceGraph] = None
        #: events recorded on this context, invalidated by reset_timeline()
        #: (weak: an event dropped by the caller should not be kept alive)
        self._recorded_events: "weakref.WeakSet[Event]" = weakref.WeakSet()
        self.timeline: List[StreamEvent] = []
        collector = _trace._ACTIVE
        if collector is not None:
            # Traced runs register every context they create so the export
            # layer can merge its modelled timeline with the host spans.
            collector.register_context(self)

    # --------------------------------------------------------------- streams
    def stream(self, name: str) -> Stream:
        """The stream called *name*, created on first use (FIFO per stream)."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        s = Stream(self, name, len(self._streams))
        self._streams[name] = s
        return s

    def stream_pool(self, n: int, prefix: str = "lane") -> List[Stream]:
        """``n`` streams for round-robin work distribution.

        ``n <= 1`` returns ``[default_stream]`` so single-stream callers pay
        no structural difference.
        """
        if n <= 1:
            return [self.default_stream]
        return [self.stream(f"{prefix}{i}") for i in range(int(n))]

    @property
    def streams(self) -> Tuple[Stream, ...]:
        return tuple(self._streams.values())

    def event(self, name: str = "") -> Event:
        """A new (unrecorded) :class:`Event` bound to this context."""
        return Event(self, name)

    def upload_pipeline(self, streams: int,
                        prefix: str = "h2d") -> Tuple[List[Stream], Stream]:
        """``(upload_lanes, compute_stream)`` for an uploads-then-compute run.

        The pattern every kernel runner uses: with ``streams > 1`` the
        uploads round-robin over their own lanes and the kernel runs on a
        separate ``"compute"`` stream (order it with :meth:`fan_in`); with
        one stream everything shares the default stream and plain FIFO
        ordering applies.
        """
        pool = self.stream_pool(streams, prefix=prefix)
        compute = self.stream("compute") if streams > 1 else self.default_stream
        return pool, compute

    def fan_in(self, lanes: Sequence[Stream], into: Stream,
               prefix: str = "join") -> Stream:
        """Make *into* wait for the current tail of every stream in *lanes*.

        Records one event per lane and waits on all of them — the standard
        uploads-then-compute barrier the kernel runners use.  Lanes that
        *are* the target stream are skipped (FIFO ordering already covers
        them), so single-stream pipelines pay nothing.
        """
        for i, lane in enumerate(lanes):
            if lane is into:
                continue
            into.wait(self.event(f"{prefix}{i}").record(lane))
        return into

    def _resolve_stream(self, stream: Optional[Stream]) -> Stream:
        if stream is None:
            return self.default_stream
        if not isinstance(stream, Stream) or stream.ctx is not self:
            raise DeviceError(
                f"stream {stream!r} does not belong to this context"
            )
        return stream

    # ------------------------------------------------------------ allocation
    def enqueue_create_buffer(self, dtype, count: int, *, label: str = "") -> DeviceBuffer:
        """Allocate a device buffer of *count* elements of *dtype*."""
        return DeviceBuffer(self, dtype, count, label=label)

    def create_tensor(self, dtype, layout: Layout, *, mut: bool = True,
                      label: str = "") -> LayoutTensor:
        """Allocate a buffer and wrap it in a :class:`LayoutTensor`."""
        buf = self.enqueue_create_buffer(dtype, layout.size, label=label)
        return buf.tensor(layout, mut=mut)

    # ---------------------------------------------------------------- launch
    def enqueue_function(
        self,
        kern,
        *args,
        grid_dim,
        block_dim,
        mode: str = "auto",
        model: Optional[KernelModel] = None,
        timing=None,
        stream: Optional[Stream] = None,
    ) -> None:
        """Enqueue a kernel launch on *stream* (default stream if omitted).

        ``model``/``timing`` are optional: when a :class:`KernelModel` (or a
        precomputed timing breakdown) is supplied, the modelled kernel time is
        recorded on the timeline, which examples use to report bandwidths.
        """
        if not isinstance(kern, Kernel):
            kern = Kernel(kern)
        launch = LaunchConfig.make(grid_dim, block_dim)
        stream = self._resolve_stream(stream)
        buffers = _referenced_buffers(args)

        def work() -> Tuple[float, Optional[ExecutionResult], dict]:
            execution = self._executor.launch(kern, args, launch, mode=mode)
            modelled = 0.0
            details = {}
            if timing is not None:
                modelled = float(getattr(timing, "kernel_time_ms", timing))
                details["timing"] = timing
            elif model is not None:
                modelled = self._predict_time(model, launch)
                details["model"] = model
            return modelled, execution, details

        reads, writes = _split_buffer_accesses(args)
        op = _Op("kernel", kern.name, stream, stream._take_waits(), buffers,
                 work, meta={"kern": kern, "args": args, "launch": launch,
                             "mode": mode, "model": model, "timing": timing},
                 reads=reads, writes=writes)
        self._submit(op)

    def enqueue_fill(self, buf: DeviceBuffer, value, *,
                     stream: Optional[Stream] = None) -> None:
        """Enqueue a modelled device-side memset of *buf* to *value*."""
        buf._check_live()
        stream = self._resolve_stream(stream)
        t_ms = buf.nbytes / (self.spec.peak_bandwidth_bytes
                             * _MEMSET_EFFICIENCY) * 1e3

        def work() -> Tuple[float, Optional[ExecutionResult], dict]:
            buf.array[...] = value
            return t_ms, None, {"nbytes": buf.nbytes, "value": value}

        op = _Op("memset", f"memset:{buf.label}", stream,
                 stream._take_waits(), (buf,), work,
                 meta={"value": value, "duration_ms": t_ms})
        self._submit(op)

    # --------------------------------------------------------------- capture
    def capture(self, name: str = "", *, check: bool = False) -> _GraphCapture:
        """Record the enqueues of a ``with`` block into a :class:`DeviceGraph`.

        Nothing executes during capture; run the result with
        :meth:`DeviceGraph.replay`.  With ``check=True`` the captured op
        list is run through the static race detector
        (:func:`repro.analysis.racecheck.analyze_graph`) when the block
        closes, and any error-severity finding — cross-stream race without
        an event edge, use-after-free — raises
        :class:`~repro.core.errors.AnalysisError` before the graph can be
        replayed.  Checked captures also record enqueue sites.
        """
        return _GraphCapture(self, name, check=check)

    # ------------------------------------------------------------- execution
    def _submit_transfer(self, kind: str, buf: DeviceBuffer,
                         fn: Callable[[], None], stream: Optional[Stream],
                         src=None, sink=None) -> None:
        stream = self._resolve_stream(stream)
        t_ms = self._transfer_model.transfer_time_s(buf.nbytes) * 1e3

        def work() -> Tuple[float, Optional[ExecutionResult], dict]:
            injector = _faults._ACTIVE
            if injector is not None:
                injector.fail_transfer(kind, buf.label)
            fn()
            if injector is not None and sink is not None:
                injector.corrupt_transfer(kind, buf.label, sink)
            return t_ms, None, {"nbytes": buf.nbytes, "buffer": buf.label}

        op = _Op(kind, f"{kind}:{buf.nbytes}B", stream, stream._take_waits(),
                 (buf,), work,
                 meta={"src": src, "duration_ms": t_ms})
        self._submit(op)

    def _submit(self, op: _Op) -> None:
        if self.record_sites:
            op.site = _caller_site()
        if self._capture is not None:
            self._capture._record(op)
        elif self.eager:
            self._execute(op)
        else:
            self._pending.append(op)

    def _execute(self, op: _Op) -> StreamEvent:
        for buf in op.buffers:
            if buf.freed:
                site = f" (enqueued at {op.site})" if op.site else ""
                raise DeviceError(
                    f"pending {op.kind} operation {op.name!r} uses freed "
                    f"buffer {buf.label!r}{site}"
                )
        start = op.stream._clock_ms
        for ev in op.waits:
            if ev._timestamp_ms is None:
                raise DeviceError(
                    f"operation {op.name!r} waits on event {ev.name!r} "
                    f"which never executed"
                )
            start = max(start, ev._timestamp_ms)
        duration, execution, details = op.work()
        end = start + duration
        op.stream._clock_ms = end
        if op.event is not None:
            op.event._timestamp_ms = start
        event = StreamEvent(op.kind, op.name, duration, execution, details,
                            stream=op.stream.name, start_ms=start, end_ms=end)
        self.timeline.append(event)
        return event

    def synchronize(self) -> List[StreamEvent]:
        """Execute all pending work in dependency order; return the timeline.

        The pending queue is drained in enqueue order, which is a valid
        topological order of the stream/event DAG (an event can only be
        waited on after its ``record`` was enqueued).  The queue is emptied
        even when an operation raises — matching a real queue, where
        submitted work is consumed exactly once.
        """
        if self._capture is not None:
            raise DeviceError("cannot synchronize during device-graph capture")
        collector = _trace._ACTIVE
        if collector is None:
            pending, self._pending = self._pending, []
            for op in pending:
                self._execute(op)
            return self.timeline
        with collector.span("device.drain", device=self.spec.name,
                            operations=len(self._pending)) as sp:
            pending, self._pending = self._pending, []
            modelled = 0.0
            for op in pending:
                modelled += self._execute(op).modelled_time_ms
            sp.set_modelled(modelled)
        return self.timeline

    @property
    def pending_operations(self) -> int:
        """Operations enqueued but not yet executed (always 0 when eager)."""
        return len(self._pending)

    # -------------------------------------------------------------- accounting
    def _predict_time(self, model: KernelModel, launch: LaunchConfig) -> float:
        # Local import: timing needs a compiled kernel, which needs a backend
        # profile; use the generic profile for context-level estimates.
        from .compiler import CompilerProfile, compile_kernel
        from ..gpu.timing import KernelTimingModel

        compiled = compile_kernel(model, CompilerProfile(name="generic"),
                                  launch=launch, backend_name="generic")
        return KernelTimingModel(self.spec).predict(compiled, launch).kernel_time_ms

    # ------------------------------------------------------------- reporting
    @property
    def memory_summary(self) -> dict:
        """Allocation accounting for the context."""
        return self._tracker.summary()

    @property
    def kernel_time_ms(self) -> float:
        """Sum of modelled kernel times on the timeline."""
        return sum(e.modelled_time_ms for e in self.timeline if e.kind == "kernel")

    @property
    def kernels_launched(self) -> int:
        return sum(1 for e in self.timeline if e.kind == "kernel")

    @property
    def elapsed_ms(self) -> float:
        """Critical-path makespan (ms) of the executed timeline.

        With work spread over multiple streams this is *less* than
        :attr:`serial_time_ms` — transfers and kernels on independent lanes
        overlap; event waits re-serialise exactly the dependencies the
        caller declared.
        """
        return max((e.end_ms for e in self.timeline), default=0.0)

    @property
    def serial_time_ms(self) -> float:
        """Sum of all executed operations' modelled durations."""
        return sum(e.modelled_time_ms for e in self.timeline)

    @property
    def lanes(self) -> Dict[str, List[StreamEvent]]:
        """The executed timeline grouped into per-stream lanes."""
        out: Dict[str, List[StreamEvent]] = {}
        for e in self.timeline:
            out.setdefault(e.stream, []).append(e)
        return out

    def pipeline_breakdown(self) -> PipelineTiming:
        """Overlap-aware :class:`PipelineTiming` of the executed timeline."""
        lanes = {name: sum(e.modelled_time_ms for e in events)
                 for name, events in self.lanes.items()}
        return PipelineTiming(elapsed_ms=self.elapsed_ms,
                              serial_ms=self.serial_time_ms,
                              lanes=lanes, operations=len(self.timeline))

    def reset_timeline(self) -> None:
        """Clear the executed timeline and rewind the stream clocks.

        Work still pending (``eager=False``) stays queued and executes from
        ``t=0`` at the next :meth:`synchronize`.  Events recorded before the
        reset are invalidated — their timestamps belong to the discarded
        timeline, so waiting on them (or reading ``elapsed_ms``) raises
        until they are recorded again.
        """
        self.timeline.clear()
        for s in self._streams.values():
            s._clock_ms = 0.0
        for ev in self._recorded_events:
            ev._stream = None
            ev._timestamp_ms = None
        self._recorded_events = weakref.WeakSet()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeviceContext({self.spec.name}, eager={self.eager})"


def _referenced_buffers(args: Sequence) -> Tuple[DeviceBuffer, ...]:
    """Device buffers referenced by a kernel argument list (deduplicated)."""
    found: Dict[int, DeviceBuffer] = {}
    for a in args:
        if isinstance(a, DeviceBuffer):
            found[id(a)] = a
        elif isinstance(a, LayoutTensor) and a.device_buffer is not None:
            found[id(a.device_buffer)] = a.device_buffer
    return tuple(found.values())


def _split_buffer_accesses(args: Sequence) -> Tuple[
        Tuple[DeviceBuffer, ...], Tuple[DeviceBuffer, ...]]:
    """``(reads, writes)`` buffer sets of a kernel argument list.

    A ``mut=False`` tensor is read-only by contract; ``mut=True`` tensors
    and bare buffers are conservatively read+write.  This is what the
    device-graph race detector keys its happens-before conflicts on.
    """
    reads: Dict[int, DeviceBuffer] = {}
    writes: Dict[int, DeviceBuffer] = {}
    for a in args:
        if isinstance(a, DeviceBuffer):
            reads[id(a)] = a
            writes[id(a)] = a
        elif isinstance(a, LayoutTensor) and a.device_buffer is not None:
            buf = a.device_buffer
            reads[id(buf)] = buf
            if a.mut:
                writes[id(buf)] = buf
    return tuple(reads.values()), tuple(writes.values())


#: this module's file, for skipping runtime-internal frames in
#: :func:`_caller_site`
_THIS_FILE = __file__


def _caller_site() -> Optional[str]:
    """``file:line`` of the first non-runtime frame of the current enqueue."""
    frame = sys._getframe(1)
    while frame is not None:
        if frame.f_code.co_filename != _THIS_FILE:
            return f"{frame.f_code.co_filename}:{frame.f_lineno}"
        frame = frame.f_back
    return None  # pragma: no cover - an enqueue always has a caller
