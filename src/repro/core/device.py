"""``DeviceContext`` and ``DeviceBuffer``: the Mojo-style device runtime API.

This is the user-facing entry point that the paper's Listing 1 demonstrates:

.. code-block:: python

    ctx = DeviceContext("h100")
    d_u = ctx.enqueue_create_buffer(DType.float32, nx)
    u = LayoutTensor(DType.float32, Layout.row_major(nx), d_u)
    ctx.enqueue_function(fill_one, u, grid_dim=num_blocks, block_dim=block_size)
    ctx.synchronize()

Operations are *enqueued* on a stream and executed lazily at
:meth:`DeviceContext.synchronize` (or eagerly with ``eager=True``, the default
for convenience in tests and examples).  The context tracks device memory
against the GPU's capacity, executes kernels functionally on the simulated
device, and accumulates a modelled timeline when a kernel provides a
:class:`~repro.core.kernel.KernelModel`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..gpu.executor import ExecutionResult, KernelExecutor
from ..gpu.memory import Allocation, AllocationTracker, MemorySpace, TransferModel
from ..gpu.specs import GPUSpec, get_gpu
from .dtypes import DType, dtype_from_any
from .errors import DeviceError, LaunchError
from .intrinsics import Dim3
from .kernel import Kernel, KernelModel, LaunchConfig
from .layout import Layout, LayoutTensor

__all__ = ["DeviceBuffer", "DeviceContext", "StreamEvent"]


class DeviceBuffer:
    """A typed, flat allocation in simulated device memory."""

    _ids = itertools.count(1)

    def __init__(self, ctx: "DeviceContext", dtype, count: int, *, label: str = ""):
        self.ctx = ctx
        self.dtype: DType = dtype_from_any(dtype)
        self.count = int(count)
        self.label = label or f"buffer{next(self._ids)}"
        self._allocation: Allocation = ctx._tracker.allocate(
            self.count, self.dtype, label=self.label
        )
        self.array = np.zeros(self.count, dtype=self.dtype.to_numpy())
        self._freed = False

    # ------------------------------------------------------------ properties
    @property
    def nbytes(self) -> int:
        return self.count * self.dtype.sizeof

    @property
    def freed(self) -> bool:
        return self._freed

    # -------------------------------------------------------------- transfers
    def copy_from_host(self, host_array) -> "DeviceBuffer":
        """Copy host data into the buffer (modelled H2D transfer)."""
        self._check_live()
        src = np.asarray(host_array, dtype=self.dtype.to_numpy()).reshape(-1)
        if src.size != self.count:
            raise DeviceError(
                f"host array has {src.size} elements, buffer holds {self.count}"
            )
        self.array[...] = src
        self.ctx._record_transfer("h2d", self.nbytes)
        return self

    def copy_to_host(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy the buffer back to the host (modelled D2H transfer)."""
        self._check_live()
        self.ctx._record_transfer("d2h", self.nbytes)
        if out is None:
            return self.array.copy()
        flat = np.asarray(out).reshape(-1)
        if flat.size != self.count:
            raise DeviceError("output array size mismatch")
        flat[...] = self.array
        return out

    def fill(self, value) -> "DeviceBuffer":
        """Fill the buffer with a scalar value."""
        self._check_live()
        self.array[...] = value
        return self

    # ------------------------------------------------------------------ views
    def tensor(self, layout: Optional[Layout] = None, *, mut: bool = True,
               bounds_check: bool = True) -> LayoutTensor:
        """Create a :class:`LayoutTensor` view over this buffer."""
        self._check_live()
        layout = layout or Layout.row_major(self.count)
        return LayoutTensor(self.dtype, layout, self, mut=mut,
                            bounds_check=bounds_check, name=self.label)

    # ----------------------------------------------------------------- free
    def free(self) -> None:
        """Release the allocation (idempotent frees raise DeviceError)."""
        self._check_live()
        self.ctx._tracker.free(self._allocation)
        self._freed = True

    def _check_live(self) -> None:
        if self._freed:
            raise DeviceError(f"use of freed buffer {self.label!r}")

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeviceBuffer({self.label}, {self.dtype.name}[{self.count}])"


@dataclass
class StreamEvent:
    """One entry in the context's executed-operation timeline."""

    kind: str                      # "kernel" | "h2d" | "d2h"
    name: str
    modelled_time_ms: float = 0.0
    execution: Optional[ExecutionResult] = None
    details: dict = field(default_factory=dict)


class DeviceContext:
    """A simulated GPU device queue, mirroring Mojo's ``DeviceContext``.

    Parameters
    ----------
    gpu:
        GPU name (``"h100"``, ``"mi300a"`` ...) or a :class:`GPUSpec`.
    eager:
        When True (default) enqueued work executes immediately;
        when False it runs at :meth:`synchronize`, matching a real stream.
    executor:
        Optional custom :class:`KernelExecutor` (tests inject small limits).
    """

    def __init__(self, gpu="h100", *, eager: bool = True,
                 executor: Optional[KernelExecutor] = None):
        self.spec: GPUSpec = get_gpu(gpu)
        self.eager = bool(eager)
        self._tracker = AllocationTracker(self.spec)
        self._transfer_model = TransferModel(self.spec)
        self._executor = executor or KernelExecutor()
        self._pending: List[Callable[[], StreamEvent]] = []
        self.timeline: List[StreamEvent] = []

    # ------------------------------------------------------------ allocation
    def enqueue_create_buffer(self, dtype, count: int, *, label: str = "") -> DeviceBuffer:
        """Allocate a device buffer of *count* elements of *dtype*."""
        return DeviceBuffer(self, dtype, count, label=label)

    def create_tensor(self, dtype, layout: Layout, *, mut: bool = True,
                      label: str = "") -> LayoutTensor:
        """Allocate a buffer and wrap it in a :class:`LayoutTensor`."""
        buf = self.enqueue_create_buffer(dtype, layout.size, label=label)
        return buf.tensor(layout, mut=mut)

    # ---------------------------------------------------------------- launch
    def enqueue_function(
        self,
        kern,
        *args,
        grid_dim,
        block_dim,
        mode: str = "auto",
        model: Optional[KernelModel] = None,
        timing=None,
    ) -> None:
        """Enqueue a kernel launch.

        ``model``/``timing`` are optional: when a :class:`KernelModel` (or a
        precomputed timing breakdown) is supplied, the modelled kernel time is
        recorded on the timeline, which examples use to report bandwidths.
        """
        if not isinstance(kern, Kernel):
            kern = Kernel(kern)
        launch = LaunchConfig.make(grid_dim, block_dim)

        def run() -> StreamEvent:
            execution = self._executor.launch(kern, args, launch, mode=mode)
            modelled = 0.0
            details = {}
            if timing is not None:
                modelled = float(getattr(timing, "kernel_time_ms", timing))
                details["timing"] = timing
            elif model is not None:
                modelled = self._predict_time(model, launch)
                details["model"] = model
            event = StreamEvent("kernel", kern.name, modelled, execution, details)
            self.timeline.append(event)
            return event

        if self.eager:
            run()
        else:
            self._pending.append(run)

    def synchronize(self) -> List[StreamEvent]:
        """Execute all pending work and return the full timeline."""
        pending, self._pending = self._pending, []
        for op in pending:
            op()
        return self.timeline

    # -------------------------------------------------------------- accounting
    def _record_transfer(self, kind: str, nbytes: int) -> None:
        t_ms = self._transfer_model.transfer_time_s(nbytes) * 1e3
        self.timeline.append(StreamEvent(kind, f"{kind}:{nbytes}B", t_ms,
                                         details={"nbytes": nbytes}))

    def _predict_time(self, model: KernelModel, launch: LaunchConfig) -> float:
        # Local import: timing needs a compiled kernel, which needs a backend
        # profile; use the generic profile for context-level estimates.
        from .compiler import CompilerProfile, compile_kernel
        from ..gpu.timing import KernelTimingModel

        compiled = compile_kernel(model, CompilerProfile(name="generic"),
                                  launch=launch, backend_name="generic")
        return KernelTimingModel(self.spec).predict(compiled, launch).kernel_time_ms

    # ------------------------------------------------------------- reporting
    @property
    def memory_summary(self) -> dict:
        """Allocation accounting for the context."""
        return self._tracker.summary()

    @property
    def kernel_time_ms(self) -> float:
        """Sum of modelled kernel times on the timeline."""
        return sum(e.modelled_time_ms for e in self.timeline if e.kind == "kernel")

    @property
    def kernels_launched(self) -> int:
        return sum(1 for e in self.timeline if e.kind == "kernel")

    def reset_timeline(self) -> None:
        self.timeline.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeviceContext({self.spec.name}, eager={self.eager})"
