"""Exception hierarchy for the portable kernel framework.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch framework-level failures with a single ``except`` clause
while still being able to distinguish configuration problems from runtime
(device) problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CompilationError",
    "LaunchError",
    "DeviceError",
    "OutOfMemoryError",
    "UnsupportedBackendError",
    "LayoutError",
    "DTypeError",
    "VerificationError",
    "AnalysisError",
    "DeadlineExceeded",
    "CircuitOpenError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro framework."""


class ConfigurationError(ReproError):
    """Raised when a user-facing configuration value is invalid."""


class CompilationError(ReproError):
    """Raised when the kernel compilation pipeline fails."""


class LaunchError(ReproError):
    """Raised when a kernel launch is malformed (bad grid/block, bad args)."""


class DeviceError(ReproError):
    """Raised for errors originating from the simulated device."""


class OutOfMemoryError(DeviceError):
    """Raised when a device allocation exceeds the simulated GPU memory."""


class UnsupportedBackendError(ConfigurationError):
    """Raised when a backend does not support the requested GPU or feature."""


class LayoutError(ReproError):
    """Raised for invalid layouts or out-of-bounds tensor accesses."""


class DTypeError(ReproError):
    """Raised for unknown or incompatible data types."""


class VerificationError(ReproError):
    """Raised when a kernel result fails verification against its reference.

    ``max_rel_error`` optionally carries the measured error magnitude so
    structured consumers (the unified workload results) do not have to parse
    it back out of the message.
    """

    def __init__(self, message: str, *, max_rel_error=None):
        super().__init__(message)
        self.max_rel_error = max_rel_error


class AnalysisError(ReproError):
    """Raised when static analysis rejects a kernel or device graph.

    Only opt-in entry points raise it — ``@kernel(strict=True)`` at
    decoration time and ``ctx.capture(check=True)`` at capture time; the
    ``repro lint`` CLI reports the same findings without raising.
    """


class DeadlineExceeded(ReproError):
    """Raised when a run exceeds its :class:`~repro.resilience.Deadline`.

    ``timeout_ms`` carries the budget that was exhausted so retry policies
    and failure records can report it without parsing the message.
    """

    def __init__(self, message: str, *, timeout_ms=None):
        super().__init__(message)
        self.timeout_ms = timeout_ms


class CircuitOpenError(ReproError):
    """Raised when a circuit breaker refuses a run for a tripped key.

    The breaker trips per ``(workload, gpu, backend)`` after repeated
    failures (see :class:`~repro.resilience.CircuitBreaker`); ``key``
    identifies the configuration that is being protected.
    """

    def __init__(self, message: str, *, key=None):
        super().__init__(message)
        self.key = key
