"""Portable GPU kernel programming model (the paper's primary contribution).

This package provides the Mojo-style device programming API used by every
workload in the repository: typed device buffers and layout tensors, thread
intrinsics, atomics, kernel/launch abstractions, and the multi-level
compilation pipeline whose backend-specific lowering reproduces the paper's
profiling observations.
"""

from .atomics import Atomic, atomic_add, atomic_max, atomic_min
from .compiler import (
    CompiledKernel,
    CompilerProfile,
    Opcode,
    build_ir,
    compile_kernel,
    default_pass_pipeline,
)
from .device import (
    DeviceBuffer,
    DeviceContext,
    DeviceGraph,
    Event,
    PipelineTiming,
    Stream,
    StreamEvent,
)
from .dtypes import DType, dtype_from_any
from .errors import (
    CompilationError,
    ConfigurationError,
    DeviceError,
    DTypeError,
    LaunchError,
    LayoutError,
    OutOfMemoryError,
    ReproError,
    UnsupportedBackendError,
    VerificationError,
)
from .intrinsics import (
    AddressSpace,
    Dim3,
    barrier,
    block_dim,
    block_idx,
    ceildiv,
    global_idx,
    grid_dim,
    shared_array,
    stack_allocation,
    thread_idx,
)
from .kernel import Kernel, KernelModel, LaunchConfig, MemoryPattern, kernel
from .layout import Layout, LayoutTensor

__all__ = [
    "Atomic", "atomic_add", "atomic_max", "atomic_min",
    "CompiledKernel", "CompilerProfile", "Opcode", "build_ir", "compile_kernel",
    "default_pass_pipeline",
    "DeviceBuffer", "DeviceContext", "DeviceGraph", "Event",
    "PipelineTiming", "Stream", "StreamEvent",
    "DType", "dtype_from_any",
    "ReproError", "ConfigurationError", "CompilationError", "LaunchError",
    "DeviceError", "OutOfMemoryError", "UnsupportedBackendError", "LayoutError",
    "DTypeError", "VerificationError",
    "AddressSpace", "Dim3", "barrier", "block_dim", "block_idx", "ceildiv",
    "global_idx", "grid_dim", "shared_array", "stack_allocation", "thread_idx",
    "Kernel", "KernelModel", "LaunchConfig", "MemoryPattern", "kernel",
    "Layout", "LayoutTensor",
]
