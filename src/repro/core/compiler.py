"""A small multi-level compilation pipeline for kernel models.

Mojo lowers kernels through MLIR to vendor ISA; CUDA/HIP lower through their
own compilers.  The observable consequences in the paper are instruction-mix
differences (Figure 5), register-allocation differences (Tables 2-3), the
availability of ``fast-math`` (Figures 6-7), and the lowering chosen for
atomic operations (Table 4).  This module reproduces those consequences with
an explicit, inspectable pipeline:

``KernelModel``  →  ``build_ir``  →  [passes]  →  :class:`CompiledKernel`

The per-backend differences are expressed by a :class:`CompilerProfile`
(constructed by each backend), so the *mechanism* that produces a difference
(e.g. constant-memory promotion producing fewer ``LDC`` instructions for Mojo)
lives here and can be ablated.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..obs import metrics as _obs_metrics
from .dtypes import DType
from .errors import CompilationError
from .kernel import KernelModel, LaunchConfig, MemoryPattern

__all__ = [
    "Opcode",
    "IROp",
    "KernelIR",
    "CompilerProfile",
    "CompiledKernel",
    "CompilerPass",
    "ConstantPromotionPass",
    "FastMathPass",
    "RegisterAllocationPass",
    "AtomicLoweringPass",
    "SpillAnalysisPass",
    "build_ir",
    "compile_kernel",
    "compile_cache_info",
    "clear_compile_cache",
    "default_pass_pipeline",
]


class Opcode:
    """Instruction classes in the lowered kernel (SASS-like mnemonics)."""

    LDG = "LDG"       # global load
    STG = "STG"       # global store
    LDS = "LDS"       # shared load
    STS = "STS"       # shared store
    LDC = "LDC"       # constant-memory load
    MOV = "MOV"       # register moves / parameter staging
    FADD = "FADD"     # fp add/sub
    FMUL = "FMUL"     # fp mul
    FFMA = "FFMA"     # fused multiply-add
    FDIV = "FDIV"     # fp divide / sqrt (slow path)
    MUFU = "MUFU"     # special-function unit op (sin, cos, exp, rsqrt ...)
    IADD3 = "IADD3"   # integer add (index arithmetic)
    IMAD = "IMAD"     # integer multiply-add
    ISETP = "ISETP"   # predicates / comparisons
    BRA = "BRA"       # branches
    BAR = "BAR"       # barrier
    ATOM = "ATOM"     # hardware atomic RMW
    ATOM_CAS = "ATOM_CAS"  # compare-and-swap loop iteration (software atomic)
    LDL = "LDL"       # local (spill) load
    STL = "STL"       # local (spill) store


@dataclass
class IROp:
    """One instruction class with an average per-thread execution count."""

    opcode: str
    count: float
    dtype: Optional[DType] = None
    note: str = ""

    def scaled(self, factor: float) -> "IROp":
        return IROp(self.opcode, self.count * factor, self.dtype, self.note)


@dataclass
class KernelIR:
    """Lowered kernel: instruction classes plus structural metadata."""

    name: str
    ops: List[IROp] = field(default_factory=list)
    model: Optional[KernelModel] = None
    fast_math: bool = False
    uses_constant_memory: bool = False
    notes: List[str] = field(default_factory=list)

    def count(self, opcode: str) -> float:
        return sum(op.count for op in self.ops if op.opcode == opcode)

    def total_instructions(self) -> float:
        return sum(op.count for op in self.ops)

    def mix(self) -> Dict[str, float]:
        """Aggregate per-opcode counts."""
        out: Dict[str, float] = {}
        for op in self.ops:
            out[op.opcode] = out.get(op.opcode, 0.0) + op.count
        return out

    def replace_ops(self, ops: List[IROp]) -> "KernelIR":
        clone = KernelIR(self.name, list(ops), self.model, self.fast_math,
                         self.uses_constant_memory, list(self.notes))
        return clone


@dataclass(frozen=True)
class CompilerProfile:
    """Backend-specific lowering characteristics.

    The default values correspond to a generic vendor compiler; each backend
    overrides the fields where the paper's profiling data shows a difference.
    The provenance of non-default values is documented in the backend modules.
    """

    name: str = "generic"
    #: does the toolchain offer a fast-math mode at all
    fast_math_available: bool = True
    #: scalar kernel arguments promoted to constant memory automatically
    constant_promotion: bool = False
    #: constant loads emitted per scalar argument when *not* promoted
    constant_loads_per_scalar: float = 2.0
    #: constant loads emitted per scalar argument when promoted
    promoted_loads_per_scalar: float = 1.0
    #: multiplier on the baseline register estimate (register allocator quality)
    register_scale: float = 1.0
    #: additive register overhead (ABI/launch bookkeeping)
    register_bias: int = 3
    #: integer-op inflation factor (address re-computation, Fig. 5's extra IADD3)
    int_op_scale: float = 1.0
    #: efficiency of cache/register reuse for stencil-like access patterns
    l1_reuse_efficiency: float = 1.0
    #: efficiency multiplier for unit-stride streaming kernels
    stride1_efficiency: float = 1.0
    #: efficiency of the block-level shared-memory reduction (Dot kernel)
    shared_reduction_efficiency: float = 1.0
    #: throughput scale of divides/special functions without fast-math
    special_function_efficiency: float = 1.0
    #: throughput scale of divides/special functions with fast-math enabled
    fast_math_special_efficiency: float = 5.0
    #: how atomics are lowered: "native" hardware RMW or "cas" software loop
    atomic_mode: str = "native"
    #: relative throughput of the backend's atomic path (1.0 = spec.atomic_gups)
    atomic_throughput_scale: float = 1.0
    #: expected CAS retries per atomic when ``atomic_mode == "cas"``
    cas_expected_retries: float = 4.0
    #: live-value budget beyond which the backend spills to local memory
    spill_threshold_values: int = 64
    #: timing penalty multiplier applied to memory traffic when spilled
    spill_penalty: float = 4.0
    #: working-value threshold above which this backend's codegen degrades
    #: (models the Mojo a=1024/ngauss=6 pathology reported in Table 4)
    pathology_threshold_values: int = 10 ** 9
    pathology_penalty: float = 1.0

    def validated(self) -> "CompilerProfile":
        if self.atomic_mode not in ("native", "cas"):
            raise CompilationError(
                f"atomic_mode must be 'native' or 'cas', got {self.atomic_mode!r}"
            )
        return self


@dataclass
class CompiledKernel:
    """Result of compiling a kernel model for a backend / GPU / launch."""

    kernel_name: str
    backend_name: str
    fast_math: bool
    ir: KernelIR
    registers_per_thread: int
    instruction_mix: Dict[str, float]
    #: global DRAM traffic per active thread, bytes
    dram_bytes_per_thread: float
    #: cost-weighted FLOP-equivalents per active thread (drives compute time)
    effective_flops_per_thread: float
    #: true floating-point operations per active thread (drives FLOP/s metrics)
    raw_flops_per_thread: float
    shared_bytes_per_block: int
    atomic_ops_per_thread: float
    atomic_mode: str
    atomic_throughput_scale: float
    spilled: bool
    local_memory_bytes_per_thread: int
    model: KernelModel
    profile: CompilerProfile
    launch: Optional[LaunchConfig] = None
    notes: List[str] = field(default_factory=list)

    @property
    def uses_constant_memory(self) -> bool:
        return self.ir.uses_constant_memory

    def sass_listing(self) -> List[str]:
        """A human-readable pseudo-assembly listing (Figure 5 style)."""
        lines = [f"// {self.backend_name} lowering of {self.kernel_name}"
                 f" (registers={self.registers_per_thread}"
                 f"{', fast-math' if self.fast_math else ''})"]
        for op in sorted(self.ir.ops, key=lambda o: -o.count):
            if op.count <= 0:
                continue
            note = f"  // {op.note}" if op.note else ""
            lines.append(f"  {op.opcode:<9} x{op.count:>8.1f}{note}")
        return lines


# ---------------------------------------------------------------------------
# IR construction
# ---------------------------------------------------------------------------

def build_ir(model: KernelModel) -> KernelIR:
    """Lower a :class:`KernelModel` into the initial (backend-neutral) IR."""
    ops: List[IROp] = []
    dt = model.dtype

    ops.append(IROp(Opcode.LDG, model.loads_global, dt, "global loads"))
    ops.append(IROp(Opcode.STG, model.stores_global, dt, "global stores"))
    if model.shared_loads:
        ops.append(IROp(Opcode.LDS, model.shared_loads, dt, "shared loads"))
    if model.shared_stores:
        ops.append(IROp(Opcode.STS, model.shared_stores, dt, "shared stores"))
    if model.barriers:
        ops.append(IROp(Opcode.BAR, model.barriers, None, "block barriers"))

    # Floating point: split plain flops into FMA + ADD/MUL in a generic ratio.
    fma = model.flops * 0.45
    fadd = model.flops * 0.35
    fmul = model.flops * 0.20
    ops.append(IROp(Opcode.FFMA, fma, dt, "fused multiply-adds"))
    ops.append(IROp(Opcode.FADD, fadd, dt, "adds/subs"))
    ops.append(IROp(Opcode.FMUL, fmul, dt, "multiplies"))
    if model.divides:
        ops.append(IROp(Opcode.FDIV, model.divides, dt, "divide/sqrt"))
    if model.transcendentals:
        ops.append(IROp(Opcode.MUFU, model.transcendentals, dt,
                        "special functions (sin/cos/exp/pow)"))

    # Integer / control instructions
    ops.append(IROp(Opcode.IADD3, model.int_ops * 0.5, None, "index adds"))
    ops.append(IROp(Opcode.IMAD, model.int_ops * 0.3, None, "index multiply-adds"))
    ops.append(IROp(Opcode.ISETP, max(1.0, model.int_ops * 0.1), None, "predicates"))
    ops.append(IROp(Opcode.BRA, max(1.0, model.int_ops * 0.1), None, "branches"))
    ops.append(IROp(Opcode.MOV, 4.0 + model.scalar_args, None, "parameter staging"))

    # Scalar arguments start as generic constant loads; the constant promotion
    # pass rewrites them per backend.
    if model.scalar_args:
        ops.append(IROp(Opcode.LDC, 0.0, None, "constant loads (pre-promotion)"))

    if model.atomics:
        ops.append(IROp(Opcode.ATOM, model.atomics, dt, "atomic RMW"))

    return KernelIR(name=model.name, ops=ops, model=model)


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------

class CompilerPass:
    """Base class: a pass transforms a KernelIR given a profile."""

    name = "pass"

    def run(self, ir: KernelIR, profile: CompilerProfile,
            fast_math: bool) -> KernelIR:  # pragma: no cover - interface
        raise NotImplementedError


class ConstantPromotionPass(CompilerPass):
    """Decide how scalar kernel arguments are materialised.

    Mojo promotes compile-time scalars into constant memory / immediates,
    producing fewer ``LDC`` operations than CUDA for the Triad kernel
    (Figure 5, observation i).
    """

    name = "constant-promotion"

    def run(self, ir: KernelIR, profile: CompilerProfile, fast_math: bool) -> KernelIR:
        model = ir.model
        if model is None or model.scalar_args == 0:
            return ir
        per_scalar = (profile.promoted_loads_per_scalar if profile.constant_promotion
                      else profile.constant_loads_per_scalar)
        new_ops = []
        for op in ir.ops:
            if op.opcode == Opcode.LDC:
                op = IROp(Opcode.LDC, per_scalar * model.scalar_args, None,
                          "constant loads" + (" (promoted)" if profile.constant_promotion else ""))
            new_ops.append(op)
        out = ir.replace_ops(new_ops)
        out.uses_constant_memory = profile.constant_promotion
        if profile.constant_promotion:
            out.notes.append("scalars promoted to constant memory")
        return out


class FastMathPass(CompilerPass):
    """Legalise special functions depending on fast-math availability."""

    name = "fast-math"

    def run(self, ir: KernelIR, profile: CompilerProfile, fast_math: bool) -> KernelIR:
        enabled = bool(fast_math and profile.fast_math_available)
        out = ir.replace_ops(list(ir.ops))
        out.fast_math = enabled
        if enabled:
            out.notes.append("fast-math: special functions lowered to HW approximations")
        elif fast_math and not profile.fast_math_available:
            out.notes.append("fast-math requested but unavailable in this toolchain")
        return out


class RegisterAllocationPass(CompilerPass):
    """Estimate registers/thread and integer-op inflation for the backend."""

    name = "register-allocation"

    def run(self, ir: KernelIR, profile: CompilerProfile, fast_math: bool) -> KernelIR:
        model = ir.model
        if model is None:
            return ir
        new_ops = []
        for op in ir.ops:
            if op.opcode in (Opcode.IADD3, Opcode.IMAD):
                op = op.scaled(profile.int_op_scale)
            new_ops.append(op)
        out = ir.replace_ops(new_ops)
        return out

    @staticmethod
    def estimate_registers(model: KernelModel, profile: CompilerProfile) -> int:
        base = model.working_values
        est = int(round(base * profile.register_scale)) + profile.register_bias
        return max(8, est)


class AtomicLoweringPass(CompilerPass):
    """Lower atomics to native RMW or to a CAS retry loop."""

    name = "atomic-lowering"

    def run(self, ir: KernelIR, profile: CompilerProfile, fast_math: bool) -> KernelIR:
        model = ir.model
        if model is None or model.atomics == 0:
            return ir
        new_ops = []
        for op in ir.ops:
            if op.opcode == Opcode.ATOM and profile.atomic_mode == "cas":
                expanded = model.atomics * (1.0 + profile.cas_expected_retries)
                new_ops.append(IROp(Opcode.ATOM_CAS, expanded, op.dtype,
                                    "software CAS loop (no native FP64 atomic path)"))
                # each retry re-loads the destination
                new_ops.append(IROp(Opcode.LDG, expanded, op.dtype,
                                    "CAS destination reloads"))
                continue
            new_ops.append(op)
        out = ir.replace_ops(new_ops)
        if profile.atomic_mode == "cas":
            out.notes.append("atomics lowered to compare-and-swap loops")
        return out


class SpillAnalysisPass(CompilerPass):
    """Detect register spilling / codegen pathologies for large kernels."""

    name = "spill-analysis"

    def run(self, ir: KernelIR, profile: CompilerProfile, fast_math: bool) -> KernelIR:
        model = ir.model
        if model is None:
            return ir
        out = ir.replace_ops(list(ir.ops))
        if model.working_values > profile.spill_threshold_values:
            spilled_values = model.working_values - profile.spill_threshold_values
            out.ops.append(IROp(Opcode.STL, spilled_values * 2.0, model.dtype,
                                "register spill stores"))
            out.ops.append(IROp(Opcode.LDL, spilled_values * 2.0, model.dtype,
                                "register spill loads"))
            out.notes.append(f"spilled {spilled_values} live values to local memory")
        return out


def default_pass_pipeline() -> List[CompilerPass]:
    """The standard pass order used by every backend."""
    return [
        ConstantPromotionPass(),
        FastMathPass(),
        RegisterAllocationPass(),
        AtomicLoweringPass(),
        SpillAnalysisPass(),
    ]


# ---------------------------------------------------------------------------
# Top-level compile
# ---------------------------------------------------------------------------

_FAST_SPECIAL_WEIGHT = 4.0     # flop-equivalents of a fast-math special op
_SLOW_SPECIAL_WEIGHT = 20.0    # flop-equivalents without fast-math
_FAST_DIV_WEIGHT = 2.0
_SLOW_DIV_WEIGHT = 12.0


# ---------------------------------------------------------------------------
# Compile memoisation
#
# The figure/table sweeps recompile the *same* (model, profile, fast_math)
# combination hundreds of times per experiment (every repeat, every GPU row).
# KernelModel, CompilerProfile and LaunchConfig are all frozen dataclasses, so
# the full compile input is hashable by value; custom pass pipelines are keyed
# by the identity of the pass instances (the tuple in the key keeps them
# alive, so ids cannot be recycled).  Entries are shared: the cached
# CompiledKernel's ``ir`` is returned by reference, while ``notes``,
# ``instruction_mix`` and ``launch`` are fresh per call.
# ---------------------------------------------------------------------------

_COMPILE_CACHE_MAXSIZE = 512
_compile_cache: "OrderedDict" = OrderedDict()
_compile_cache_lock = threading.Lock()
_compile_cache_hits = 0
_compile_cache_misses = 0


def compile_cache_info() -> Dict[str, int]:
    """Hit/miss/size statistics of the :func:`compile_kernel` memo."""
    with _compile_cache_lock:
        return {
            "hits": _compile_cache_hits,
            "misses": _compile_cache_misses,
            "size": len(_compile_cache),
            "maxsize": _COMPILE_CACHE_MAXSIZE,
        }


def clear_compile_cache() -> None:
    """Drop all memoised compilations (and reset the hit/miss counters)."""
    global _compile_cache_hits, _compile_cache_misses
    with _compile_cache_lock:
        _compile_cache.clear()
        _compile_cache_hits = 0
        _compile_cache_misses = 0


def compile_kernel(
    model: KernelModel,
    profile: CompilerProfile,
    *,
    fast_math: bool = False,
    launch: Optional[LaunchConfig] = None,
    backend_name: Optional[str] = None,
    passes: Optional[List[CompilerPass]] = None,
) -> CompiledKernel:
    """Run the pass pipeline over *model* and assemble a :class:`CompiledKernel`.

    Results are memoised on ``(model, profile, fast_math, backend_name,
    passes-identity)`` in a shared LRU cache; *launch* only annotates the
    returned object and is applied per call.  Because :class:`KernelModel` is
    frozen, a "mutated" model (via :meth:`KernelModel.scaled`) is a different
    value and therefore a different cache key — stale results cannot be
    served.
    """
    global _compile_cache_hits, _compile_cache_misses
    key = (model, profile, bool(fast_math), backend_name,
           None if passes is None else tuple(passes))
    try:
        with _compile_cache_lock:
            cached = _compile_cache.get(key)
            if cached is not None:
                _compile_cache_hits += 1
                _compile_cache.move_to_end(key)
        if cached is not None:
            _obs_metrics.inc("compile_cache_hits_total")
    except TypeError:
        # Unhashable ingredient (e.g. an exotic pass pipeline): compile
        # straight through without memoisation.
        return _compile_uncached(model, profile, fast_math=fast_math,
                                 launch=launch, backend_name=backend_name,
                                 passes=passes)
    if cached is None:
        cached = _compile_uncached(model, profile, fast_math=fast_math,
                                   launch=None, backend_name=backend_name,
                                   passes=passes)
        with _compile_cache_lock:
            _compile_cache_misses += 1
            _compile_cache[key] = cached
            while len(_compile_cache) > _COMPILE_CACHE_MAXSIZE:
                _compile_cache.popitem(last=False)
        _obs_metrics.inc("compile_cache_misses_total")
    return replace(cached, launch=launch, notes=list(cached.notes),
                   instruction_mix=dict(cached.instruction_mix))


def _compile_uncached(
    model: KernelModel,
    profile: CompilerProfile,
    *,
    fast_math: bool = False,
    launch: Optional[LaunchConfig] = None,
    backend_name: Optional[str] = None,
    passes: Optional[List[CompilerPass]] = None,
) -> CompiledKernel:
    """The actual pass pipeline; see :func:`compile_kernel`."""
    profile = profile.validated()
    ir = build_ir(model)
    for p in (passes if passes is not None else default_pass_pipeline()):
        ir = p.run(ir, profile, fast_math)

    fast = ir.fast_math
    registers = RegisterAllocationPass.estimate_registers(model, profile)
    spilled = model.working_values > profile.spill_threshold_values
    local_bytes = 0
    if spilled:
        local_bytes = (model.working_values - profile.spill_threshold_values) \
            * model.dtype.sizeof

    # DRAM traffic per active thread, including CAS reload traffic.
    loads = ir.count(Opcode.LDG)
    stores = ir.count(Opcode.STG)
    dram_bytes = (loads + stores) * model.dtype.sizeof
    if spilled:
        spill_traffic = (ir.count(Opcode.LDL) + ir.count(Opcode.STL)) * model.dtype.sizeof
        dram_bytes += spill_traffic * 0.5   # spills partially hit in L2

    # FLOP accounting: raw FLOPs for reporting, weighted FLOPs for timing.
    raw_flops = model.flops + model.divides + model.transcendentals
    special_eff = (profile.fast_math_special_efficiency if fast
                   else profile.special_function_efficiency)
    special_eff = max(special_eff, 1e-6)
    div_weight = (_FAST_DIV_WEIGHT if fast else _SLOW_DIV_WEIGHT) / special_eff
    mufu_weight = (_FAST_SPECIAL_WEIGHT if fast else _SLOW_SPECIAL_WEIGHT) / special_eff
    effective_flops = (
        model.flops
        + model.divides * div_weight
        + model.transcendentals * mufu_weight
    )
    # The codegen pathology observed in the paper (Table 4, a=1024/ngauss=6)
    # is specific to the atomic-heavy Hartree-Fock kernel with a very large
    # working set; kernels without atomics are not affected.
    pathology = (model.atomics > 0
                 and model.working_values > profile.pathology_threshold_values)
    if pathology:
        effective_flops *= profile.pathology_penalty
        ir.notes.append("codegen pathology: working set exceeds backend threshold")

    atomic_per_thread = model.atomics
    atomic_scale = profile.atomic_throughput_scale
    if profile.atomic_mode == "cas":
        atomic_scale = atomic_scale / (1.0 + profile.cas_expected_retries)

    return CompiledKernel(
        kernel_name=model.name,
        backend_name=backend_name or profile.name,
        fast_math=fast,
        ir=ir,
        registers_per_thread=registers,
        instruction_mix=ir.mix(),
        dram_bytes_per_thread=dram_bytes,
        effective_flops_per_thread=effective_flops,
        raw_flops_per_thread=raw_flops,
        shared_bytes_per_block=model.shared_bytes_per_block,
        atomic_ops_per_thread=atomic_per_thread,
        atomic_mode=profile.atomic_mode,
        atomic_throughput_scale=atomic_scale,
        spilled=spilled,
        local_memory_bytes_per_thread=local_bytes,
        model=model,
        profile=profile,
        launch=launch,
        notes=list(ir.notes),
    )
