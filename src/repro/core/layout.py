"""Compile-time layouts and ``LayoutTensor`` views over device buffers.

Mojo's GPU standard library exposes a ``Layout`` describing the logical
shape/strides of an N-D tensor and a ``LayoutTensor`` which binds a layout to
a device buffer.  Kernels in the paper (Listings 2 and 5) index these tensors
with multi-dimensional subscripts (``u[i, j, k]``).  This module provides the
same abstraction for the simulated device: a :class:`Layout` is a pure
shape/stride description, and a :class:`LayoutTensor` is a zero-copy view over
a NumPy array or :class:`~repro.core.device.DeviceBuffer`.

Bounds checking is on by default (this is a correctness-first simulator) and
can be disabled per tensor for speed in large benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from .dtypes import DType, dtype_from_any
from .errors import LayoutError

__all__ = ["Layout", "LayoutTensor"]


def _as_shape(dims: Sequence[int]) -> Tuple[int, ...]:
    shape = tuple(int(d) for d in dims)
    if len(shape) == 0:
        raise LayoutError("a layout needs at least one dimension")
    if any(d <= 0 for d in shape):
        raise LayoutError(f"layout dimensions must be positive, got {shape}")
    return shape


def _row_major_strides(shape: Tuple[int, ...]) -> Tuple[int, ...]:
    strides = [1] * len(shape)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    return tuple(strides)


def _col_major_strides(shape: Tuple[int, ...]) -> Tuple[int, ...]:
    strides = [1] * len(shape)
    for i in range(1, len(shape)):
        strides[i] = strides[i - 1] * shape[i - 1]
    return tuple(strides)


@dataclass(frozen=True)
class Layout:
    """An N-dimensional element layout (shape + element strides).

    Strides are expressed in *elements*, not bytes, matching the Mojo API.
    """

    shape: Tuple[int, ...]
    strides: Tuple[int, ...]
    order: str = "row_major"

    # ------------------------------------------------------------------ ctors
    @classmethod
    def row_major(cls, *dims: int) -> "Layout":
        """C-ordered layout: the last dimension is contiguous."""
        shape = _as_shape(_flatten_dims(dims))
        return cls(shape, _row_major_strides(shape), "row_major")

    @classmethod
    def col_major(cls, *dims: int) -> "Layout":
        """Fortran-ordered layout: the first dimension is contiguous."""
        shape = _as_shape(_flatten_dims(dims))
        return cls(shape, _col_major_strides(shape), "col_major")

    # -------------------------------------------------------------- properties
    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of elements."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def is_contiguous(self) -> bool:
        """True when the layout covers its elements without gaps."""
        expected = (
            _row_major_strides(self.shape)
            if self.order == "row_major"
            else _col_major_strides(self.shape)
        )
        return self.strides == expected

    # ------------------------------------------------------------------ logic
    def offset(self, *index: int) -> int:
        """Flat element offset of a multi-dimensional index.

        Raises :class:`LayoutError` when the index rank does not match or the
        index is out of bounds.
        """
        idx = _flatten_dims(index)
        if len(idx) != self.rank:
            raise LayoutError(
                f"index rank {len(idx)} does not match layout rank {self.rank}"
            )
        off = 0
        for i, (x, d, s) in enumerate(zip(idx, self.shape, self.strides)):
            x = int(x)
            if x < 0 or x >= d:
                raise LayoutError(
                    f"index {x} out of bounds for dimension {i} of extent {d}"
                )
            off += x * s
        return off

    def offset_array(self, *index) -> np.ndarray:
        """Vectorised :meth:`offset`: per-lane flat offsets for index arrays.

        Each component may be an integer array (one entry per lane) or a
        plain int broadcast across lanes; bounds are validated per lane.
        Used by the vectorized executor's gather/scatter tensor accesses.
        """
        idx = _flatten_dims(index)
        if len(idx) != self.rank:
            raise LayoutError(
                f"index rank {len(idx)} does not match layout rank {self.rank}"
            )
        off = 0
        for i, (x, d, s) in enumerate(zip(idx, self.shape, self.strides)):
            x = np.asarray(x)
            if x.size and (int(x.min()) < 0 or int(x.max()) >= d):
                raise LayoutError(
                    f"lane index out of bounds for dimension {i} of extent {d}"
                )
            off = off + x * s
        return off

    def nbytes(self, dtype) -> int:
        """Total size in bytes for elements of *dtype*."""
        return self.size * dtype_from_any(dtype).sizeof

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.shape)
        return f"Layout.{self.order}({dims})"


def _flatten_dims(dims) -> Tuple[int, ...]:
    """Allow ``row_major(2, 3)`` and ``row_major((2, 3))`` interchangeably."""
    if len(dims) == 1 and isinstance(dims[0], (tuple, list)):
        return tuple(dims[0])
    return tuple(dims)


class LayoutTensor:
    """A typed, layout-aware view over device (or host) memory.

    Parameters
    ----------
    dtype:
        Element type (anything accepted by :func:`dtype_from_any`).
    layout:
        The :class:`Layout` describing shape and strides.
    storage:
        A NumPy array or a :class:`repro.core.device.DeviceBuffer`; must hold
        at least ``layout.size`` elements.  The tensor never copies.
    mut:
        Whether writes are allowed; mirrors Mojo's ``mut`` parameter.
    bounds_check:
        Verify every access against the layout (default True).
    """

    __slots__ = ("dtype", "layout", "_data", "mut", "bounds_check", "name",
                 "_strides", "_f64", "device_buffer")

    def __init__(self, dtype, layout: Layout, storage, *, mut: bool = True,
                 bounds_check: bool = True, name: str = ""):
        self.dtype: DType = dtype_from_any(dtype)
        self.layout = layout
        self.mut = bool(mut)
        self.bounds_check = bool(bounds_check)
        self.name = name
        # Cached for the unchecked fast path; per-element indexing inside
        # simulated kernels is the executor's hottest operation.  float64
        # reads return a Python float (identical IEEE-754 double semantics,
        # much cheaper downstream arithmetic); narrower dtypes keep their
        # NumPy scalar so per-operation rounding is preserved.
        self._strides = layout.strides
        self._f64 = self.dtype.name == "float64"
        # Back-reference to the owning DeviceBuffer (duck-typed: device.py
        # imports this module, not the other way round) so enqueued kernels
        # can detect use-after-free of a pending launch at execution time.
        self.device_buffer = (storage if hasattr(storage, "freed")
                              and hasattr(storage, "array") else None)
        data = _storage_array(storage)
        if data.size < layout.size:
            raise LayoutError(
                f"storage holds {data.size} elements but layout requires "
                f"{layout.size}"
            )
        if DType.from_numpy(data.dtype) != self.dtype:
            raise LayoutError(
                f"storage dtype {data.dtype} does not match tensor dtype "
                f"{self.dtype.name}"
            )
        self._data = data

    # ------------------------------------------------------------- properties
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.layout.shape

    @property
    def rank(self) -> int:
        return self.layout.rank

    @property
    def size(self) -> int:
        return self.layout.size

    @property
    def nbytes(self) -> int:
        return self.layout.nbytes(self.dtype)

    @property
    def ptr(self) -> np.ndarray:
        """The flat backing array (the 'device pointer')."""
        return self._data

    # ------------------------------------------------------------------ access
    # __getitem__/__setitem__ each carry a full copy of the index-resolution
    # logic (bounds-checked via Layout.offset, otherwise rank-specialised
    # stride arithmetic): an element access runs once per simulated GPU
    # thread, so the call frame a shared resolver helper would cost is
    # measurable in the functional-executor benchmarks.  Keep both copies in
    # sync when changing indexing semantics.
    #
    # Index components may also be NumPy integer arrays (one entry per lane
    # of the vectorized executor), in which case the access is a gather /
    # scatter over the flat storage.  The scalar hot path stays free of
    # per-access isinstance checks: array indices surface as a TypeError from
    # the scalar resolution (``int()`` / ``ndarray.item``) and are re-resolved
    # through :meth:`Layout.offset_array` / fancy indexing.
    def __getitem__(self, index):
        if self.bounds_check:
            try:
                off = (self.layout.offset(*index) if type(index) is tuple
                       else self.layout.offset(index))
            except TypeError:
                off = (self.layout.offset_array(*index) if type(index) is tuple
                       else self.layout.offset_array(index))
        elif type(index) is tuple:
            s = self._strides
            if len(index) == 3:
                off = index[0] * s[0] + index[1] * s[1] + index[2] * s[2]
            elif len(index) == 2:
                off = index[0] * s[0] + index[1] * s[1]
            else:
                off = 0
                for x, st in zip(index, s):
                    off += x * st
        else:
            off = index * self._strides[0]
        if self._f64:
            try:
                return self._data.item(off)
            except TypeError:          # per-lane index array: gather
                return self._data[off]
        return self._data[off]

    def __setitem__(self, index, value):
        if not self.mut:
            raise LayoutError(f"tensor {self.name or '<anonymous>'} is immutable")
        if self.bounds_check:
            try:
                off = (self.layout.offset(*index) if type(index) is tuple
                       else self.layout.offset(index))
            except TypeError:
                off = (self.layout.offset_array(*index) if type(index) is tuple
                       else self.layout.offset_array(index))
        elif type(index) is tuple:
            s = self._strides
            if len(index) == 3:
                off = index[0] * s[0] + index[1] * s[1] + index[2] * s[2]
            elif len(index) == 2:
                off = index[0] * s[0] + index[1] * s[1]
            else:
                off = 0
                for x, st in zip(index, s):
                    off += x * st
        else:
            off = index * self._strides[0]
        self._data[off] = value

    def load(self, *index):
        """Element load, explicit-call form of ``__getitem__``."""
        return self[index]

    def store(self, value, *index) -> None:
        """Element store, explicit-call form of ``__setitem__``."""
        self[tuple(index)] = value

    # -------------------------------------------------------------- conversion
    def to_numpy(self) -> np.ndarray:
        """Return a *copy* of the tensor contents shaped per the layout."""
        if self.layout.order == "row_major" and self.layout.is_contiguous:
            return self._data[: self.size].reshape(self.shape).copy()
        out = np.empty(self.shape, dtype=self.dtype.to_numpy())
        it = np.ndindex(*self.shape)
        for idx in it:
            out[idx] = self._data[self.layout.offset(*idx)]
        return out

    def view(self) -> np.ndarray:
        """Zero-copy reshaped view (contiguous row-major layouts only)."""
        if not (self.layout.order == "row_major" and self.layout.is_contiguous):
            raise LayoutError("view() requires a contiguous row-major layout")
        return self._data[: self.size].reshape(self.shape)

    def fill(self, value) -> "LayoutTensor":
        """Fill every element with *value* (requires mutability)."""
        if not self.mut:
            raise LayoutError("cannot fill an immutable tensor")
        self._data[: self.size] = value
        return self

    def copy_from(self, array: Iterable) -> "LayoutTensor":
        """Copy host data into the tensor (shape must match)."""
        arr = np.asarray(array, dtype=self.dtype.to_numpy())
        if arr.size != self.size:
            raise LayoutError(
                f"source has {arr.size} elements, tensor expects {self.size}"
            )
        if not self.mut:
            raise LayoutError("cannot copy into an immutable tensor")
        self.view()[...] = arr.reshape(self.shape)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mut = "mut" if self.mut else "immut"
        return (f"LayoutTensor<{self.dtype.name}, {self.layout}, {mut}"
                f"{', ' + self.name if self.name else ''}>")


def _storage_array(storage) -> np.ndarray:
    """Extract the flat NumPy array backing *storage*."""
    # DeviceBuffer exposes .array; avoid importing device.py (circular import).
    arr = getattr(storage, "array", storage)
    arr = np.asarray(arr)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr
