"""Kernel objects, launch configurations and analytic kernel models.

A *kernel* in this framework is an ordinary Python function written in the
per-thread style of the paper's Mojo listings.  Wrapping it in
:class:`Kernel` (usually via the :func:`kernel` decorator) attaches metadata
used by the backends:

* a human-readable name,
* an optional :class:`KernelModel` builder describing the kernel's per-thread
  resource usage (global loads/stores, FLOPs, atomics, shared-memory traffic,
  transcendental operations ...).  The compiler pipeline lowers this model to
  an instruction mix and the timing model turns it into a predicted kernel
  duration on a given GPU.

The :class:`LaunchConfig` mirrors the ``grid_dim`` / ``block_dim`` pair passed
to ``ctx.enqueue_function`` in Mojo / ``<<<grid, block>>>`` in CUDA.
"""

from __future__ import annotations

import functools
import weakref
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from .dtypes import DType, dtype_from_any
from .errors import AnalysisError, LaunchError
from .intrinsics import Dim3, ceildiv

__all__ = [
    "Kernel",
    "kernel",
    "registered_kernels",
    "LaunchConfig",
    "KernelModel",
    "MemoryPattern",
]

#: kernels created through the :func:`kernel` decorator, by name — the
#: population ``repro lint`` verifies.  Weak values: a kernel dropped by its
#: module should not be kept alive (and re-verified) by the registry.
#: Transient ``Kernel(fn)`` wraps (e.g. ``enqueue_function`` normalising a
#: bare callable) deliberately do not register.
_REGISTRY: "weakref.WeakValueDictionary[str, Kernel]" = \
    weakref.WeakValueDictionary()


def registered_kernels() -> Dict[str, "Kernel"]:
    """Snapshot of all decorator-registered kernels, keyed by name."""
    return dict(sorted(_REGISTRY.items()))


class MemoryPattern:
    """Global-memory access pattern classes used by the timing model."""

    STRIDE1 = "stride1"        # perfectly coalesced 1-D streaming (BabelStream)
    STENCIL3D = "stencil3d"    # 3-D neighbourhood, reuse through caches
    STRIDED = "strided"        # regular but non-unit stride
    GATHER = "gather"          # data-dependent/random access
    ALL = (STRIDE1, STENCIL3D, STRIDED, GATHER)


@dataclass(frozen=True)
class KernelModel:
    """Per-thread resource model of a kernel for one specific problem setup.

    All quantities are *per thread* unless stated otherwise.  Element-sized
    loads/stores are expressed in elements of :attr:`dtype`.
    """

    name: str
    dtype: DType
    #: global memory loads per thread (elements of ``dtype``)
    loads_global: float
    #: global memory stores per thread (elements of ``dtype``)
    stores_global: float
    #: floating-point operations per thread (adds/mults/FMAs counted as 1 each)
    flops: float
    #: integer ALU operations per thread (index arithmetic)
    int_ops: float = 8.0
    #: transcendental / special-function ops per thread (sin, cos, exp, pow)
    transcendentals: float = 0.0
    #: floating point divisions / square roots per thread
    divides: float = 0.0
    #: atomic read-modify-write operations per thread
    atomics: float = 0.0
    #: shared-memory loads / stores per thread (elements)
    shared_loads: float = 0.0
    shared_stores: float = 0.0
    #: block-level barriers executed per thread
    barriers: float = 0.0
    #: scalar kernel arguments (candidates for constant-memory promotion)
    scalar_args: int = 0
    #: estimate of simultaneously-live values (drives register allocation)
    working_values: int = 8
    #: True when the kernel allocates block shared memory
    uses_shared: bool = False
    #: bytes of shared memory per block
    shared_bytes_per_block: int = 0
    #: global memory access pattern (see :class:`MemoryPattern`)
    memory_pattern: str = MemoryPattern.STRIDE1
    #: fraction of threads that do useful work (guards like ``if i < n``)
    active_fraction: float = 1.0
    #: independent work items per thread (instruction-level parallelism);
    #: e.g. miniBUDE's poses-per-work-item, which lets the scheduler hide
    #: instruction latency and raises achievable compute throughput
    ilp: float = 1.0
    #: free-form notes carried into reports
    notes: str = ""

    def __post_init__(self):
        if self.memory_pattern not in MemoryPattern.ALL:
            raise LaunchError(
                f"unknown memory pattern {self.memory_pattern!r}; "
                f"expected one of {MemoryPattern.ALL}"
            )
        if not 0.0 < self.active_fraction <= 1.0:
            raise LaunchError(
                f"active_fraction must be in (0, 1], got {self.active_fraction}"
            )

    # ------------------------------------------------------------ aggregates
    @property
    def element_bytes(self) -> int:
        return self.dtype.sizeof

    def bytes_per_thread(self) -> float:
        """Global-memory bytes touched by one (active) thread."""
        return (self.loads_global + self.stores_global) * self.element_bytes

    def total_bytes(self, active_threads: int) -> float:
        """Total global-memory traffic for *active_threads* threads."""
        return self.bytes_per_thread() * active_threads

    def total_flops(self, active_threads: int) -> float:
        """Total floating point work, counting special functions as multi-op."""
        per_thread = (
            self.flops
            + self.divides * _DIVIDE_FLOP_WEIGHT
            + self.transcendentals * _TRANSCENDENTAL_FLOP_WEIGHT
        )
        return per_thread * active_threads

    def total_atomics(self, active_threads: int) -> float:
        return self.atomics * active_threads

    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of global traffic (per thread, DRAM level)."""
        b = self.bytes_per_thread()
        if b == 0:
            return float("inf")
        return (self.flops + self.divides + self.transcendentals) / b

    def scaled(self, **changes) -> "KernelModel":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)


#: FLOP-equivalents charged for a division / special function when fast-math
#: is unavailable.  These weights reflect the multi-instruction expansions the
#: paper attributes to the missing ``fast-math`` option in Mojo.
_DIVIDE_FLOP_WEIGHT = 8.0
_TRANSCENDENTAL_FLOP_WEIGHT = 20.0


@dataclass(frozen=True)
class LaunchConfig:
    """Grid and block extents for one kernel launch."""

    grid_dim: Dim3
    block_dim: Dim3

    @classmethod
    def make(cls, grid_dim, block_dim) -> "LaunchConfig":
        cfg = cls(Dim3.make(grid_dim), Dim3.make(block_dim))
        cfg.validate()
        return cfg

    @classmethod
    def for_elements(cls, n: int, block_size: int = 256) -> "LaunchConfig":
        """1-D launch covering *n* elements with *block_size* threads/block."""
        if n <= 0:
            raise LaunchError(f"element count must be positive, got {n}")
        return cls.make(ceildiv(n, block_size), block_size)

    def validate(self) -> None:
        if self.block_dim.total <= 0 or self.grid_dim.total <= 0:
            raise LaunchError(
                f"launch extents must be positive: grid={self.grid_dim} "
                f"block={self.block_dim}"
            )
        if self.block_dim.total > 1024:
            raise LaunchError(
                f"block has {self.block_dim.total} threads; the simulated "
                "device (like CUDA/HIP/Mojo) caps blocks at 1024 threads"
            )

    @property
    def threads_per_block(self) -> int:
        return self.block_dim.total

    @property
    def num_blocks(self) -> int:
        return self.grid_dim.total

    @property
    def total_threads(self) -> int:
        return self.threads_per_block * self.num_blocks

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"grid={self.grid_dim} block={self.block_dim}"


class Kernel:
    """A device kernel: per-thread function plus metadata.

    Parameters
    ----------
    fn:
        The per-thread Python function.  It receives the launch arguments and
        reads its indices from the module-level intrinsics.
    name:
        Kernel name (defaults to the function name).
    model_builder:
        Optional callable ``(**problem_params) -> KernelModel`` describing the
        kernel's resource usage for a given problem configuration.
    vector_safe:
        Declares that the body is written in the SIMT-generic style (lane
        helpers from :mod:`repro.core.intrinsics`, no scalar-only control
        flow), so the executor's lockstep ``vectorized`` mode may evaluate a
        whole lane set per call.  Defaults to False: plain per-thread kernels
        keep the scalar executors.  The flag is also cached on the underlying
        function object so re-wraps of the same callable agree.
    strict:
        When True the static kernel verifier (:mod:`repro.analysis`) runs at
        construction time and any error-severity diagnostic raises
        :class:`~repro.core.errors.AnalysisError`.  Off by default — the
        launch path never pays for analysis unless asked.
    """

    def __init__(self, fn: Callable, name: Optional[str] = None,
                 model_builder: Optional[Callable[..., KernelModel]] = None,
                 vector_safe: Optional[bool] = None, strict: bool = False):
        if not callable(fn):
            raise LaunchError("Kernel requires a callable kernel body")
        self.fn = fn
        self.name = name or fn.__name__
        self.model_builder = model_builder
        #: the caller's declaration, tri-state: None = never declared (the
        #: verifier may then infer), True/False = hand-set here or on the
        #: underlying function by an earlier wrap
        if vector_safe is None and hasattr(fn, "_repro_vector_safe"):
            self.declared_vector_safe: Optional[bool] = \
                bool(fn._repro_vector_safe)
        else:
            self.declared_vector_safe = \
                None if vector_safe is None else bool(vector_safe)
        if vector_safe is None:
            vector_safe = bool(getattr(fn, "_repro_vector_safe", False))
        self.vector_safe = bool(vector_safe)
        if self.vector_safe:
            try:
                fn._repro_vector_safe = True
            except (AttributeError, TypeError):  # pragma: no cover
                pass
        functools.update_wrapper(self, fn)
        if strict:
            self._verify_strict()

    def _verify_strict(self) -> None:
        # Local import: the analysis package is a consumer of this module.
        from ..analysis.verifier import lint_kernel

        errors = [d for d in lint_kernel(self) if d.severity == "error"]
        if errors:
            findings = "\n".join(f"  {d}" for d in errors)
            raise AnalysisError(
                f"kernel {self.name!r} failed strict verification:\n{findings}"
            )

    def __call__(self, *args, **kwargs):
        """Invoke the per-thread body directly (used by the executor)."""
        return self.fn(*args, **kwargs)

    def model(self, **problem_params) -> KernelModel:
        """Build the kernel's :class:`KernelModel` for a problem configuration."""
        if self.model_builder is None:
            raise LaunchError(
                f"kernel {self.name!r} does not define a model builder"
            )
        return self.model_builder(**problem_params)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kernel({self.name})"


def kernel(fn: Optional[Callable] = None, *, name: Optional[str] = None,
           model: Optional[Callable[..., KernelModel]] = None,
           vector_safe: Optional[bool] = None, strict: bool = False):
    """Decorator turning a per-thread function into a :class:`Kernel`.

    Usable bare (``@kernel``) or with options (``@kernel(model=...)``).
    ``vector_safe=True`` marks the body as SIMT-generic (see :class:`Kernel`),
    which lets the executor's lockstep ``vectorized`` mode run it; an
    explicit ``vector_safe=False`` forces the scalar executors even when the
    underlying function carries a cached vector-safe marking from an earlier
    wrap.  The default (``None``) inherits the function's marking.
    ``strict=True`` runs the static verifier at decoration time and raises
    :class:`~repro.core.errors.AnalysisError` on any error diagnostic.

    Decorated kernels join the registry behind
    :func:`registered_kernels`, which is the population ``repro lint``
    verifies.
    """

    def wrap(f: Callable) -> Kernel:
        k = Kernel(f, name=name, model_builder=model,
                   vector_safe=vector_safe, strict=strict)
        _REGISTRY[k.name] = k
        return k

    if fn is not None:
        return wrap(fn)
    return wrap
