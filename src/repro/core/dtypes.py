"""Data type registry mirroring Mojo's ``DType`` for the simulated device.

The paper's kernels are written against a small set of numeric types
(``DType.float32``, ``DType.float64``, a few integer types).  This module
provides the equivalent registry plus conversion helpers to and from NumPy
dtypes, so that device buffers, layout tensors and the timing model can all
agree on element sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .errors import DTypeError

__all__ = ["DType", "dtype_from_any", "PRECISION_NAMES"]


@dataclass(frozen=True)
class DType:
    """A device element type.

    Attributes
    ----------
    name:
        Canonical lowercase name, e.g. ``"float32"``.
    sizeof:
        Size of one element in bytes.
    kind:
        One of ``"float"``, ``"int"``, ``"uint"``, ``"bool"``.
    """

    name: str
    sizeof: int
    kind: str

    # -- class-level registry -------------------------------------------------
    _registry: dict = None  # populated after class definition

    def to_numpy(self) -> np.dtype:
        """Return the equivalent NumPy dtype."""
        return np.dtype(_NUMPY_NAMES[self.name])

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_integer(self) -> bool:
        return self.kind in ("int", "uint")

    @property
    def bits(self) -> int:
        return self.sizeof * 8

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"

    # -- named accessors (populated below) ------------------------------------
    float16: "DType" = None
    float32: "DType" = None
    float64: "DType" = None
    int8: "DType" = None
    int16: "DType" = None
    int32: "DType" = None
    int64: "DType" = None
    uint8: "DType" = None
    uint32: "DType" = None
    uint64: "DType" = None
    bool_: "DType" = None

    @classmethod
    def from_name(cls, name: str) -> "DType":
        """Look a dtype up by name (``"float32"``, ``"fp64"``, ``"f32"`` ...)."""
        key = _ALIASES.get(name.lower(), name.lower())
        try:
            return _REGISTRY[key]
        except KeyError:
            raise DTypeError(f"unknown dtype name: {name!r}") from None

    @classmethod
    def from_numpy(cls, np_dtype) -> "DType":
        """Map a NumPy dtype (or anything ``np.dtype`` accepts) to a DType."""
        nd = np.dtype(np_dtype)
        for name, npname in _NUMPY_NAMES.items():
            if np.dtype(npname) == nd:
                return _REGISTRY[name]
        raise DTypeError(f"no DType equivalent for numpy dtype {nd!r}")

    @classmethod
    def all(cls) -> tuple:
        """Return every registered dtype."""
        return tuple(_REGISTRY.values())


_NUMPY_NAMES = {
    "float16": "float16",
    "float32": "float32",
    "float64": "float64",
    "int8": "int8",
    "int16": "int16",
    "int32": "int32",
    "int64": "int64",
    "uint8": "uint8",
    "uint32": "uint32",
    "uint64": "uint64",
    "bool": "bool",
}

_REGISTRY = {
    "float16": DType("float16", 2, "float"),
    "float32": DType("float32", 4, "float"),
    "float64": DType("float64", 8, "float"),
    "int8": DType("int8", 1, "int"),
    "int16": DType("int16", 2, "int"),
    "int32": DType("int32", 4, "int"),
    "int64": DType("int64", 8, "int"),
    "uint8": DType("uint8", 1, "uint"),
    "uint32": DType("uint32", 4, "uint"),
    "uint64": DType("uint64", 8, "uint"),
    "bool": DType("bool", 1, "bool"),
}

_ALIASES = {
    "fp16": "float16",
    "fp32": "float32",
    "fp64": "float64",
    "f16": "float16",
    "f32": "float32",
    "f64": "float64",
    "half": "float16",
    "float": "float32",
    "single": "float32",
    "double": "float64",
    "i32": "int32",
    "i64": "int64",
    "u32": "uint32",
    "u64": "uint64",
    "bool_": "bool",
}

# Attach the named accessors used throughout the code base
DType.float16 = _REGISTRY["float16"]
DType.float32 = _REGISTRY["float32"]
DType.float64 = _REGISTRY["float64"]
DType.int8 = _REGISTRY["int8"]
DType.int16 = _REGISTRY["int16"]
DType.int32 = _REGISTRY["int32"]
DType.int64 = _REGISTRY["int64"]
DType.uint8 = _REGISTRY["uint8"]
DType.uint32 = _REGISTRY["uint32"]
DType.uint64 = _REGISTRY["uint64"]
DType.bool_ = _REGISTRY["bool"]

#: Names accepted by the CLI / harness for the two precisions in the paper.
PRECISION_NAMES = ("float32", "float64")

DTypeLike = Union[DType, str, np.dtype, type]


def dtype_from_any(value: DTypeLike) -> DType:
    """Coerce *value* into a :class:`DType`.

    Accepts a DType, a name string (with aliases like ``"fp64"``), a NumPy
    dtype object, or a Python/NumPy scalar type.
    """
    if isinstance(value, DType):
        return value
    if isinstance(value, str):
        return DType.from_name(value)
    try:
        return DType.from_numpy(value)
    except Exception as exc:  # noqa: BLE001 - re-raise as DTypeError
        raise DTypeError(f"cannot interpret {value!r} as a DType") from exc
