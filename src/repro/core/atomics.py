"""Atomic read-modify-write operations on simulated device memory.

The Hartree-Fock kernel (Listing 5 of the paper) updates the Fock matrix with
``Atomic.fetch_add`` calls.  On the simulated device the same API is provided
here.  In the sequential executor, threads run one at a time so plain
read-modify-write is already atomic; in the cooperative (multi-threaded)
executor a process-wide lock guarantees atomicity.  Every atomic is counted on
the active thread's counter set so the profiler and the timing model can see
atomic pressure.
"""

from __future__ import annotations

import threading
from typing import Union

import numpy as np

from .errors import LaunchError
from .intrinsics import current_thread_state
from .layout import LayoutTensor

__all__ = ["Atomic", "atomic_add", "atomic_max", "atomic_min", "AtomicView"]

_ATOMIC_LOCK = threading.Lock()

ArrayLike = Union[np.ndarray, LayoutTensor]


def _resolve(target, index):
    """Return (flat_array, flat_index) for an atomic target."""
    if isinstance(target, LayoutTensor):
        arr = target.ptr
        if isinstance(index, tuple):
            flat = target.layout.offset(*index)
        else:
            flat = int(index)
        return arr, flat
    arr = np.asarray(target)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    if isinstance(index, tuple):
        raise LaunchError("tuple indices require a LayoutTensor target")
    return arr, int(index)


def _record_atomic() -> None:
    try:
        state = current_thread_state()
    except LaunchError:
        return
    if state.counters is not None:
        state.counters.record_atomic()


def _rmw(target, index, value, op):
    arr, flat = _resolve(target, index)
    if flat < 0 or flat >= arr.size:
        raise LaunchError(f"atomic index {flat} out of bounds for size {arr.size}")
    _record_atomic()
    with _ATOMIC_LOCK:
        old = arr[flat]
        arr[flat] = op(old, value)
    return old


class AtomicView:
    """A pointer-like handle supporting ``offset`` then atomic ops.

    Mirrors the paper's ``fock.ptr.offset(i * natoms + j)`` idiom:

    >>> Atomic.fetch_add(fock.ptr_offset(i * natoms + j), value)
    """

    __slots__ = ("array", "index")

    def __init__(self, array: np.ndarray, index: int):
        self.array = array
        self.index = int(index)


class Atomic:
    """Namespace of atomic operations, matching Mojo's ``Atomic`` struct."""

    @staticmethod
    def fetch_add(target, index_or_value, value=None):
        """Atomically add and return the previous value.

        Two call forms are supported::

            Atomic.fetch_add(tensor, (i, j), v)   # indexed target
            Atomic.fetch_add(view, v)             # AtomicView from ptr_offset()
        """
        if isinstance(target, AtomicView) and value is None:
            return _rmw(target.array, target.index, index_or_value,
                        lambda old, v: old + v)
        if value is None:
            raise LaunchError("Atomic.fetch_add(target, index, value) requires a value")
        return _rmw(target, index_or_value, value, lambda old, v: old + v)

    @staticmethod
    def fetch_max(target, index, value):
        """Atomically take the maximum and return the previous value."""
        return _rmw(target, index, value, lambda old, v: max(old, v))

    @staticmethod
    def fetch_min(target, index, value):
        """Atomically take the minimum and return the previous value."""
        return _rmw(target, index, value, lambda old, v: min(old, v))

    @staticmethod
    def compare_exchange(target, index, expected, desired) -> bool:
        """Atomic compare-and-swap; returns True when the swap happened."""
        arr, flat = _resolve(target, index)
        _record_atomic()
        with _ATOMIC_LOCK:
            if arr[flat] == expected:
                arr[flat] = desired
                return True
            return False


def atomic_add(target, index, value):
    """Functional alias for :meth:`Atomic.fetch_add`."""
    return Atomic.fetch_add(target, index, value)


def atomic_max(target, index, value):
    """Functional alias for :meth:`Atomic.fetch_max`."""
    return Atomic.fetch_max(target, index, value)


def atomic_min(target, index, value):
    """Functional alias for :meth:`Atomic.fetch_min`."""
    return Atomic.fetch_min(target, index, value)
