"""Atomic read-modify-write operations on simulated device memory.

The Hartree-Fock kernel (Listing 5 of the paper) updates the Fock matrix with
``Atomic.fetch_add`` calls.  On the simulated device the same API is provided
here.  In the sequential executor, threads run one at a time so plain
read-modify-write is already atomic; in the cooperative (multi-threaded)
executor a process-wide lock guarantees atomicity.  Every atomic is counted on
the active thread's counter set so the profiler and the timing model can see
atomic pressure.

Array semantics
---------------
Under the vectorized executor one ``Atomic.fetch_add`` call carries *arrays*
of indices and values — one element per lane.  The update is applied with the
unbuffered ``numpy.ufunc.at`` form (``np.add.at`` and friends), so duplicate
target indices within a call accumulate element by element in ascending-lane
order, exactly as the same lanes would when executed one thread at a time.
One lane-vector call counts ``num_lanes`` atomic events, keeping the
:class:`~repro.gpu.executor.ExecutionCounters` identical across execution
modes.  The lane form returns ``None`` (per-lane previous values are not
materialised).
"""

from __future__ import annotations

import threading
from typing import Union

import numpy as np

from .errors import LaunchError
from .intrinsics import current_thread_state
from .layout import LayoutTensor

__all__ = ["Atomic", "atomic_add", "atomic_max", "atomic_min", "AtomicView",
           "ATOMIC_FUNCTIONS"]

#: names of the atomic read-modify-write entry points, for the static
#: kernel verifier — an atomic access is data-race-free by definition, but
#: its *index* argument is still subject to the bounds rules
ATOMIC_FUNCTIONS = ("fetch_add", "fetch_max", "fetch_min",
                    "compare_exchange", "atomic_add", "atomic_max",
                    "atomic_min")

_ATOMIC_LOCK = threading.Lock()

ArrayLike = Union[np.ndarray, LayoutTensor]


def _resolve(target, index):
    """Return (flat_array, flat_index) for an atomic target.

    ``flat_index`` is an int for one simulated thread, or an int array (one
    entry per lane) when the vectorized executor issues the atomic for a
    whole lane set at once.
    """
    if isinstance(target, LayoutTensor):
        arr = target.ptr
        if isinstance(index, tuple):
            try:
                flat = target.layout.offset(*index)
            except TypeError:      # per-lane index arrays
                flat = target.layout.offset_array(*index)
        elif isinstance(index, np.ndarray):
            flat = index
        else:
            flat = int(index)
        return arr, flat
    arr = np.asarray(target)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    if isinstance(index, tuple):
        raise LaunchError("tuple indices require a LayoutTensor target")
    if isinstance(index, np.ndarray):
        return arr, index
    return arr, int(index)


def _record_atomic(n: int = 1) -> None:
    try:
        state = current_thread_state()
    except LaunchError:
        return
    if state.counters is not None:
        state.counters.record_atomic(n)


def _rmw(target, index, value, op, ufunc=None):
    arr, flat = _resolve(target, index)
    if isinstance(flat, np.ndarray):
        if ufunc is None:
            raise LaunchError("this atomic does not support lane-vector form")
        flat = np.asarray(flat, dtype=np.intp)
        if flat.size and (int(flat.min()) < 0 or int(flat.max()) >= arr.size):
            raise LaunchError(
                f"atomic lane index out of bounds for size {arr.size}")
        _record_atomic(int(flat.size))
        with _ATOMIC_LOCK:
            ufunc.at(arr, flat, value)
        return None
    if flat < 0 or flat >= arr.size:
        raise LaunchError(f"atomic index {flat} out of bounds for size {arr.size}")
    _record_atomic()
    with _ATOMIC_LOCK:
        old = arr[flat]
        arr[flat] = op(old, value)
    return old


class AtomicView:
    """A pointer-like handle supporting ``offset`` then atomic ops.

    Mirrors the paper's ``fock.ptr.offset(i * natoms + j)`` idiom:

    >>> Atomic.fetch_add(fock.ptr_offset(i * natoms + j), value)
    """

    __slots__ = ("array", "index")

    def __init__(self, array: np.ndarray, index: int):
        self.array = array
        self.index = int(index)


class Atomic:
    """Namespace of atomic operations, matching Mojo's ``Atomic`` struct."""

    @staticmethod
    def fetch_add(target, index_or_value, value=None):
        """Atomically add and return the previous value.

        Two call forms are supported::

            Atomic.fetch_add(tensor, (i, j), v)   # indexed target
            Atomic.fetch_add(view, v)             # AtomicView from ptr_offset()
        """
        if isinstance(target, AtomicView) and value is None:
            return _rmw(target.array, target.index, index_or_value,
                        lambda old, v: old + v, np.add)
        if value is None:
            raise LaunchError("Atomic.fetch_add(target, index, value) requires a value")
        return _rmw(target, index_or_value, value, lambda old, v: old + v, np.add)

    @staticmethod
    def fetch_max(target, index, value):
        """Atomically take the maximum and return the previous value."""
        return _rmw(target, index, value, lambda old, v: max(old, v), np.maximum)

    @staticmethod
    def fetch_min(target, index, value):
        """Atomically take the minimum and return the previous value."""
        return _rmw(target, index, value, lambda old, v: min(old, v), np.minimum)

    @staticmethod
    def compare_exchange(target, index, expected, desired) -> bool:
        """Atomic compare-and-swap; returns True when the swap happened."""
        arr, flat = _resolve(target, index)
        if isinstance(flat, np.ndarray):
            raise LaunchError("compare_exchange does not support lane-vector form")
        _record_atomic()
        with _ATOMIC_LOCK:
            if arr[flat] == expected:
                arr[flat] = desired
                return True
            return False


def atomic_add(target, index, value):
    """Functional alias for :meth:`Atomic.fetch_add`."""
    return Atomic.fetch_add(target, index, value)


def atomic_max(target, index, value):
    """Functional alias for :meth:`Atomic.fetch_max`."""
    return Atomic.fetch_max(target, index, value)


def atomic_min(target, index, value):
    """Functional alias for :meth:`Atomic.fetch_min`."""
    return Atomic.fetch_min(target, index, value)
