"""Shared helpers for the on-disk JSON stores (result cache, tuning DB).

Both persistent stores — ``.repro_cache/`` (request-level result cache) and
``.repro_tune/`` (tuning database) — are directories of small JSON files
written through on every miss.  Left alone they grow without bound across
sweeps and CLI invocations, so each store calls
:func:`prune_dir_to_budget` after a write: entries are evicted
oldest-modified-first until the directory fits its byte budget again.

The helper is deliberately conservative: it only ever touches files matching
the store's own suffix, it never removes the entry that was just written
(the newest file), and every filesystem error is swallowed — a cache prune
must never break the run that triggered it.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

__all__ = ["dir_size_bytes", "prune_dir_to_budget", "read_json_entry",
           "write_json_entry"]


def _entries(path: str, suffix: str) -> List[Tuple[float, int, str]]:
    """(mtime, size, full_path) for every regular *suffix* file in *path*."""
    entries = []
    try:
        names = os.listdir(path)
    except OSError:
        return entries
    for name in names:
        if not name.endswith(suffix):
            continue
        full = os.path.join(path, name)
        try:
            st = os.stat(full)
        except OSError:
            continue
        entries.append((st.st_mtime, st.st_size, full))
    return entries


def dir_size_bytes(path: str, *, suffix: str = ".json") -> int:
    """Total size of the store's entries (files ending in *suffix*)."""
    return sum(size for _, size, _ in _entries(path, suffix))


def read_json_entry(path: str) -> Optional[dict]:
    """One store entry's JSON payload, or None when absent/corrupt.

    Corruption (a torn write, a truncated file) reads as a miss, never an
    error — both stores treat their disk layer as best-effort.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def write_json_entry(path: str, payload: dict, max_bytes: int) -> bool:
    """Write one store entry, then prune its directory to *max_bytes*.

    Creates the parent directory on demand; a read-only or full filesystem
    makes this a no-op (returns False) rather than an error, matching the
    stores' best-effort disk contract.
    """
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, default=str)
    except OSError:  # pragma: no cover - read-only / full filesystem
        return False
    prune_dir_to_budget(os.path.dirname(path), max_bytes)
    return True


def prune_dir_to_budget(path: str, max_bytes: int, *,
                        suffix: str = ".json") -> int:
    """Evict oldest entries from *path* until it fits *max_bytes*.

    Returns the number of files removed.  Eviction order is by modification
    time (oldest first); the newest entry always survives, even when it is
    alone larger than the budget, so the write that triggered the prune is
    never undone.  ``max_bytes <= 0`` disables pruning entirely.
    """
    if max_bytes is None or max_bytes <= 0:
        return 0
    entries = _entries(path, suffix)
    total = sum(size for _, size, _ in entries)
    if total <= max_bytes or len(entries) <= 1:
        return 0
    entries.sort()  # oldest first
    removed = 0
    for mtime, size, full in entries[:-1]:  # newest entry is exempt
        if total <= max_bytes:
            break
        try:
            os.unlink(full)
        except OSError:  # pragma: no cover - raced or read-only store
            continue
        total -= size
        removed += 1
    return removed
