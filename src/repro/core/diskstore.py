"""Shared helpers for the on-disk JSON stores (result cache, tuning DB).

Both persistent stores — ``.repro_cache/`` (request-level result cache) and
``.repro_tune/`` (tuning database) — are directories of small JSON files
written through on every miss.  Left alone they grow without bound across
sweeps and CLI invocations, so each store calls
:func:`prune_dir_to_budget` after a write: entries are evicted
oldest-modified-first until the directory fits its byte budget again.

Every entry carries an embedded content checksum (``__checksum__``,
written by :func:`write_json_entry` over the entry's canonical JSON).  A
read that finds unparseable JSON or a checksum mismatch — a torn write, a
truncated file, on-disk corruption — **quarantines** the file into the
store's ``quarantine/`` subdirectory, emits a :class:`CorruptEntryWarning`
and reports a miss: the store heals itself by recomputing the entry, and
the damaged bytes stay available for post-mortem instead of being served
or silently deleted.  Entries written before the checksum existed verify
trivially (no field, no check).

The prune helper is deliberately conservative: it only ever touches files
matching the store's own suffix (the ``quarantine/`` subdirectory is a
directory, so it is never listed), it never removes the entry that was just
written (the newest file), and every filesystem error is swallowed — a
cache prune must never break the run that triggered it.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from typing import List, Optional, Tuple

from ..resilience import faults as _faults

__all__ = ["dir_size_bytes", "prune_dir_to_budget", "read_json_entry",
           "write_json_entry", "CorruptEntryWarning", "QUARANTINE_DIR"]

#: subdirectory (per store directory) that corrupt entries are moved into
QUARANTINE_DIR = "quarantine"

#: key under which the content checksum is embedded in every entry
_CHECKSUM_KEY = "__checksum__"


class CorruptEntryWarning(UserWarning):
    """A store entry was unreadable or failed its checksum and was quarantined."""


def _entries(path: str, suffix: str) -> List[Tuple[float, int, str]]:
    """(mtime, size, full_path) for every regular *suffix* file in *path*."""
    entries = []
    try:
        names = os.listdir(path)
    except OSError:
        return entries
    for name in names:
        if not name.endswith(suffix):
            continue
        full = os.path.join(path, name)
        try:
            st = os.stat(full)
        except OSError:
            continue
        entries.append((st.st_mtime, st.st_size, full))
    return entries


def dir_size_bytes(path: str, *, suffix: str = ".json") -> int:
    """Total size of the store's entries (files ending in *suffix*)."""
    return sum(size for _, size, _ in _entries(path, suffix))


def _checksum(payload: dict) -> str:
    """Content digest over the entry's canonical JSON (checksum key excluded).

    The body is round-tripped through JSON before hashing so the digest of
    the in-memory payload (tuples, ``default=str`` conversions) and the
    digest of the parsed file contents agree by construction.
    """
    body = {k: v for k, v in payload.items() if k != _CHECKSUM_KEY}
    body = json.loads(json.dumps(body, default=str))
    canonical = json.dumps(body, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def quarantine_entry(path: str, reason: str) -> Optional[str]:
    """Move a corrupt entry into its store's ``quarantine/`` subdirectory.

    Returns the quarantined path (None when the move failed — e.g. a
    read-only store, where the bad file simply stays put and keeps reading
    as a miss).  A warning is emitted either way so sweeps surface the
    corruption without dying on it.
    """
    directory, name = os.path.split(path)
    target: Optional[str] = os.path.join(directory, QUARANTINE_DIR, name)
    try:
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.replace(path, target)
    except OSError:  # pragma: no cover - read-only / raced store
        target = None
    warnings.warn(
        f"corrupt store entry {path!r} ({reason}); "
        + (f"quarantined to {target!r}" if target else "quarantine failed")
        + "; treating as a miss",
        CorruptEntryWarning,
        stacklevel=3,
    )
    return target


def read_json_entry(path: str) -> Optional[dict]:
    """One store entry's JSON payload, or None when absent/corrupt.

    Corruption (a torn write, a truncated file, a checksum mismatch) reads
    as a miss, never an error — the bad file is quarantined (see
    :func:`quarantine_entry`) so the store recomputes and heals.  A missing
    file is a plain miss, no warning.
    """
    injector = _faults._ACTIVE
    if injector is not None and injector.corrupt_read(path):
        # Injected torn read: report a miss without touching the real file.
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError:
        return None
    except json.JSONDecodeError as exc:
        quarantine_entry(path, f"invalid JSON: {exc}")
        return None
    if not isinstance(payload, dict):
        quarantine_entry(path, "entry is not a JSON object")
        return None
    stored = payload.pop(_CHECKSUM_KEY, None)
    if stored is not None and stored != _checksum(payload):
        quarantine_entry(path, "checksum mismatch")
        return None
    return payload


def write_json_entry(path: str, payload: dict, max_bytes: int) -> bool:
    """Write one store entry (checksummed), then prune to *max_bytes*.

    Creates the parent directory on demand; a read-only or full filesystem
    makes this a no-op (returns False) rather than an error, matching the
    stores' best-effort disk contract.
    """
    entry = dict(payload)
    entry[_CHECKSUM_KEY] = _checksum(entry)
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, default=str)
    except OSError:  # pragma: no cover - read-only / full filesystem
        return False
    prune_dir_to_budget(os.path.dirname(path), max_bytes)
    return True


def prune_dir_to_budget(path: str, max_bytes: int, *,
                        suffix: str = ".json") -> int:
    """Evict oldest entries from *path* until it fits *max_bytes*.

    Returns the number of files removed.  Eviction order is by modification
    time (oldest first); the newest entry always survives, even when it is
    alone larger than the budget, so the write that triggered the prune is
    never undone.  ``max_bytes <= 0`` disables pruning entirely.
    """
    if max_bytes is None or max_bytes <= 0:
        return 0
    entries = _entries(path, suffix)
    total = sum(size for _, size, _ in entries)
    if total <= max_bytes or len(entries) <= 1:
        return 0
    entries.sort()  # oldest first
    removed = 0
    for mtime, size, full in entries[:-1]:  # newest entry is exempt
        if total <= max_bytes:
            break
        try:
            os.unlink(full)
        except OSError:  # pragma: no cover - raced or read-only store
            continue
        total -= size
        removed += 1
    return removed
