"""GPU thread intrinsics: ``thread_idx``, ``block_idx``, ``barrier`` ...

The paper's kernels (Listings 2-5) read built-in index registers such as
``thread_idx.x`` and synchronise with ``barrier()``.  Inside this simulator a
kernel body is an ordinary Python function; while the executor runs it, the
"current thread" state is stored in a thread-local so that module-level proxy
objects (``thread_idx``, ``block_idx``, ``block_dim``, ``grid_dim``) resolve to
the right values both in the sequential executor and in the cooperative
(threaded) executor used for kernels with barriers.

Example
-------
>>> from repro.core import thread_idx, block_idx, block_dim
>>> def copy_kernel(a, c, n):
...     i = block_dim.x * block_idx.x + thread_idx.x
...     if i < n:
...         c[i] = a[i]
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .dtypes import dtype_from_any
from .errors import LaunchError

__all__ = [
    "Dim3",
    "ThreadState",
    "thread_idx",
    "block_idx",
    "block_dim",
    "grid_dim",
    "global_idx",
    "barrier",
    "stack_allocation",
    "shared_array",
    "AddressSpace",
    "current_thread_state",
    "bind_thread_state",
    "ceildiv",
    "any_lane",
    "all_lanes",
    "lane_where",
    "compress_lanes",
    "masked_gather",
    "masked_store",
    "SIMT_MODEL",
]

#: Static model of the SIMT intrinsic surface, consumed by the kernel
#: verifier (:mod:`repro.analysis.verifier`).  Groups name the *semantic
#: role* each intrinsic plays in a lockstep (vectorized) evaluation — what
#: produces lane-varying values, what reduces them back to uniform ones,
#: what bounds them, and what synchronises.  New intrinsics must join a
#: group here (or a new group the verifier learns), otherwise the analysis
#: treats them as opaque calls.
SIMT_MODEL = {
    # module-level proxies whose components differ per lane
    "lane_index_sources": ("thread_idx", "block_idx"),
    # proxies that are identical across every lane of a block/grid
    "uniform_geometry": ("block_dim", "grid_dim"),
    # calls returning lane-varying indices
    "lane_index_calls": ("global_idx",),
    # reductions collapsing a lane-varying mask to one uniform truth value
    "lane_reductions": ("any_lane", "all_lanes"),
    # constructs that bound lane-varying values (select/compact)
    "lane_guards": ("compress_lanes", "lane_where"),
    # predicated memory accessors (safe at any in-mask index)
    "masked_accessors": ("masked_gather", "masked_store"),
    # block shared-memory allocators
    "shared_allocators": ("shared_array", "stack_allocation"),
    # block-level synchronisation
    "barrier_calls": ("barrier",),
}


def ceildiv(a: int, b: int) -> int:
    """Ceiling integer division, as used to size grids from problem sizes."""
    if b <= 0:
        raise LaunchError(f"ceildiv divisor must be positive, got {b}")
    return -(-int(a) // int(b))


@dataclass(frozen=True)
class Dim3:
    """A 3-component index/extent, matching CUDA/HIP/Mojo ``dim3``."""

    x: int = 1
    y: int = 1
    z: int = 1

    @classmethod
    def make(cls, value) -> "Dim3":
        """Coerce an int, tuple or Dim3 into a Dim3."""
        if isinstance(value, Dim3):
            return value
        if isinstance(value, (int, np.integer)):
            return cls(int(value), 1, 1)
        if isinstance(value, (tuple, list)):
            vals = tuple(int(v) for v in value)
            if not 1 <= len(vals) <= 3:
                raise LaunchError(f"dim3 needs 1-3 components, got {vals}")
            return cls(*(vals + (1,) * (3 - len(vals))))
        raise LaunchError(f"cannot interpret {value!r} as a Dim3")

    @property
    def total(self) -> int:
        return self.x * self.y * self.z

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.x, self.y, self.z)

    def __iter__(self):
        return iter((self.x, self.y, self.z))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x}, {self.y}, {self.z})"


class AddressSpace:
    """Marker constants for memory spaces, mirroring Mojo's ``AddressSpace``."""

    GLOBAL = "global"
    SHARED = "shared"
    LOCAL = "local"
    CONSTANT = "constant"


class ThreadState:
    """Per-thread execution state visible through the intrinsic proxies.

    The executor creates one of these per simulated thread (sequential mode)
    or per worker thread (cooperative mode) and binds it with
    :func:`bind_thread_state`.
    """

    __slots__ = (
        "thread_idx",
        "block_idx",
        "block_dim",
        "grid_dim",
        "block_shared",
        "block_barrier",
        "counters",
        "_shared_seq",
    )

    def __init__(
        self,
        thread_idx: Dim3,
        block_idx: Dim3,
        block_dim: Dim3,
        grid_dim: Dim3,
        block_shared: Optional[Dict] = None,
        block_barrier=None,
        counters=None,
    ):
        self.thread_idx = thread_idx
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        # Shared memory segments are per *block*; all threads in the block see
        # the same dict instance.
        self.block_shared = block_shared if block_shared is not None else {}
        self.block_barrier = block_barrier
        self.counters = counters
        self._shared_seq = 0

    # ------------------------------------------------------------------ ids
    @property
    def linear_thread_id(self) -> int:
        t, b = self.thread_idx, self.block_dim
        return t.x + t.y * b.x + t.z * b.x * b.y

    @property
    def linear_block_id(self) -> int:
        c, g = self.block_idx, self.grid_dim
        return c.x + c.y * g.x + c.z * g.x * g.y

    @property
    def global_linear_id(self) -> int:
        return self.linear_block_id * self.block_dim.total + self.linear_thread_id

    # --------------------------------------------------------------- shared
    def shared_alloc(self, key: str, size: int, dtype) -> np.ndarray:
        """Return (allocating on first use) a block-shared array.

        All threads of a block calling with the same *key* receive the same
        array object, which is how CUDA ``__shared__`` / Mojo
        ``stack_allocation[..., AddressSpace.SHARED]`` behave.

        The allocation must be race-free under the cooperative executor:
        every worker thread of a block calls this concurrently at kernel
        entry, and a check-then-insert would let two workers allocate
        distinct arrays — one thread then writes partial results into an
        array nobody else reads.  ``dict.setdefault`` is atomic in CPython,
        so exactly one allocation wins and every caller receives it.
        """
        arr = self.block_shared.get(key)
        if arr is None:
            np_dtype = dtype_from_any(dtype).to_numpy()
            arr = self.block_shared.setdefault(
                key, np.zeros(int(size), dtype=np_dtype))
        return arr

    def barrier(self) -> None:
        """Block-level synchronisation."""
        if self.counters is not None:
            self.counters.record_barrier()
        if self.block_barrier is not None:
            self.block_barrier.wait()
        # In sequential mode (single simulated thread at a time within a
        # block-phase executor) the barrier is a no-op; the executor is
        # responsible for choosing cooperative mode for barrier kernels.


_tls = threading.local()


class _Binder:
    """Context manager binding one :class:`ThreadState` to the OS thread.

    A module-level class: building a throwaway class object per bind (the
    previous implementation) costs more than the entire bind/unbind.
    """

    __slots__ = ("state", "prev")

    def __init__(self, state: Optional[ThreadState]):
        self.state = state

    def __enter__(self):
        self.prev = getattr(_tls, "state", None)
        _tls.state = self.state
        return self.state

    def __exit__(self, *exc):
        _tls.state = self.prev
        return False


def bind_thread_state(state: Optional[ThreadState]):
    """Bind *state* as the active thread state for the calling OS thread.

    Returns a context manager so executors can use ``with bind_thread_state(s):``.
    """
    return _Binder(state)


def current_thread_state() -> ThreadState:
    """Return the active :class:`ThreadState` (raises outside a kernel)."""
    state = getattr(_tls, "state", None)
    if state is None:
        raise LaunchError(
            "GPU intrinsics can only be used inside a kernel launched through "
            "DeviceContext.enqueue_function / the executor"
        )
    return state


class _IndexProxy:
    """Module-level proxy exposing ``.x/.y/.z`` of the active thread state.

    The accessors read ``_tls.state`` directly rather than going through
    :func:`current_thread_state`: index reads are the hottest operation of the
    functional simulator (every simulated thread starts by computing its
    global index), so each saved Python frame is measurable.  The
    ``AttributeError`` fallback covers the unbound case (``_tls.state``
    missing or ``None``) and converts it into the usual :class:`LaunchError`.
    """

    __slots__ = ("_attr",)

    def __init__(self, attr: str):
        self._attr = attr

    def _dim(self) -> Dim3:
        return getattr(current_thread_state(), self._attr)

    @property
    def x(self) -> int:
        try:
            return getattr(_tls.state, self._attr).x
        except AttributeError:
            return self._dim().x

    @property
    def y(self) -> int:
        try:
            return getattr(_tls.state, self._attr).y
        except AttributeError:
            return self._dim().y

    @property
    def z(self) -> int:
        try:
            return getattr(_tls.state, self._attr).z
        except AttributeError:
            return self._dim().z

    @property
    def total(self) -> int:
        return self._dim().total

    def as_tuple(self):
        return self._dim().as_tuple()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        try:
            return f"<{self._attr} {self._dim()}>"
        except LaunchError:
            return f"<{self._attr} (unbound)>"


#: Index of the calling thread within its block.
thread_idx = _IndexProxy("thread_idx")
#: Index of the calling thread's block within the grid.
block_idx = _IndexProxy("block_idx")
#: Extent of a block (threads per block).
block_dim = _IndexProxy("block_dim")
#: Extent of the grid (blocks per grid).
grid_dim = _IndexProxy("grid_dim")


def global_idx() -> Dim3:
    """Global 3-D thread index (``block_idx * block_dim + thread_idx``)."""
    s = current_thread_state()
    return Dim3(
        s.block_idx.x * s.block_dim.x + s.thread_idx.x,
        s.block_idx.y * s.block_dim.y + s.thread_idx.y,
        s.block_idx.z * s.block_dim.z + s.thread_idx.z,
    )


def barrier() -> None:
    """Synchronise all threads of the calling block."""
    current_thread_state().barrier()


def stack_allocation(size: int, dtype, *, address_space: str = AddressSpace.SHARED,
                     key: Optional[str] = None) -> np.ndarray:
    """Allocate a block-shared or thread-local scratch array.

    Mirrors Mojo's ``stack_allocation[size, Scalar[dtype], address_space=...]``.
    With ``AddressSpace.SHARED`` the allocation is shared by the block (all
    threads receive the same array); otherwise it is private to the thread.
    """
    state = current_thread_state()
    if address_space == AddressSpace.SHARED:
        if key is None:
            # Allocation identity follows call order within the kernel, which
            # is identical across threads of a block for structured kernels.
            key = f"__shared_{state._shared_seq}"
        state._shared_seq += 1
        return state.shared_alloc(key, size, dtype)
    return np.zeros(int(size), dtype=dtype_from_any(dtype).to_numpy())


def shared_array(size: int, dtype, key: Optional[str] = None) -> np.ndarray:
    """Convenience wrapper for a block-shared allocation."""
    return stack_allocation(size, dtype, address_space=AddressSpace.SHARED, key=key)


# ---------------------------------------------------------------------------
# SIMT-generic lane helpers
#
# A *vector-safe* kernel body is written once and executed in two regimes:
#
# * scalar — the sequential/cooperative executors run the body once per
#   simulated thread; ``thread_idx.x`` is a Python int, conditions are plain
#   bools, and these helpers degrade to trivial scalar operations;
# * lockstep — the vectorized executor
#   (:mod:`repro.gpu.vector_executor`) runs the body once per block (or once
#   for the whole grid) with ``thread_idx.x`` as a NumPy index array, one
#   element per lane; conditions become boolean masks and these helpers
#   express the masked divergence (predicated branches) of SIMT hardware.
#
# The dispatch rule is uniform: a mask that is a ``np.ndarray`` means
# "lockstep over lanes", anything else means "one scalar thread".
# ---------------------------------------------------------------------------


def any_lane(mask) -> bool:
    """True when any active lane satisfies *mask*.

    Scalar threads pass their plain boolean through, so the canonical
    vector-safe guard ``if not any_lane(m): return`` keeps the original
    per-thread early-exit semantics.
    """
    if isinstance(mask, np.ndarray):
        return bool(mask.any())
    return bool(mask)


def all_lanes(mask) -> bool:
    """True when every active lane satisfies *mask*."""
    if isinstance(mask, np.ndarray):
        return bool(mask.all())
    return bool(mask)


def lane_where(mask, value, other):
    """Per-lane select: ``value`` where *mask* holds, else ``other``.

    The vector-safe replacement for a data-dependent ``if``/``else`` whose
    branches only compute values (no stores): scalar threads get a Python
    conditional expression, lockstep lanes get :func:`numpy.where`.
    """
    if isinstance(mask, np.ndarray):
        return np.where(mask, value, other)
    return value if mask else other


def compress_lanes(mask, *values):
    """Restrict *values* to the lanes where *mask* holds.

    Used directly after the ``if not any_lane(mask): return`` guard to drop
    inactive lanes (e.g. the out-of-range tail threads of a 1-D launch), so
    the remaining body can gather/scatter without per-access masking.  Scalar
    threads reach this only when the mask held, so their values pass through
    unchanged.  Returns a single value for a single input, a tuple otherwise.
    """
    if isinstance(mask, np.ndarray):
        out = tuple(v[mask] if isinstance(v, np.ndarray) else v for v in values)
    else:
        out = values
    return out[0] if len(out) == 1 else out


def masked_gather(target, index, mask, other=0.0):
    """Load ``target[index]`` on lanes where *mask* holds, *other* elsewhere.

    Inactive lanes never dereference their (possibly out-of-range) index:
    the lockstep path substitutes index 0 before the gather and replaces the
    result with *other* afterwards, matching the behaviour of a predicated
    load.
    """
    if isinstance(mask, np.ndarray):
        safe = np.where(mask, index, 0)
        return np.where(mask, target[safe], other)
    return target[index] if mask else other


def masked_store(target, index, value, mask) -> None:
    """Store ``value`` into ``target[index]`` on lanes where *mask* holds.

    The lockstep path compresses the index/value arrays to the active lanes
    before scattering, so inactive lanes neither write nor evaluate an
    out-of-range address.  Lanes are scattered in ascending-lane order, which
    matches the sequential executor's thread order when duplicate indices
    collide (last lane wins in both regimes).
    """
    if isinstance(mask, np.ndarray):
        if not mask.any():
            return
        idx = np.broadcast_to(np.asarray(index), mask.shape)[mask]
        vals = np.broadcast_to(np.asarray(value), mask.shape)[mask]
        target[idx] = vals
    elif mask:
        target[index] = value
