"""Retry, deadline and circuit-breaker policies for workload runs.

Three small, composable mechanisms, all deterministic:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *seeded* jitter (the delay for attempt *i* is a pure function of the
  seed, so chaos runs replay identically);
* :class:`Deadline` — a wall-clock budget for one run, enforced by joining
  a worker thread (the simulator has no preemption points, so a hung
  candidate is abandoned rather than interrupted) and surfaced as
  :class:`DeadlineExceeded`;
* :class:`CircuitBreaker` — per-key failure counting with an open/half-open
  cooldown cycle, so sweeps stop hammering a configuration that keeps
  dying (keyed by ``(workload, gpu, backend)`` in the sweep integration).
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from ..core.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceeded,
    DeviceError,
    LaunchError,
    ReproError,
)
from ..obs import metrics as _obs_metrics

__all__ = ["RetryPolicy", "Deadline", "CircuitBreaker"]


class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means up to
    two retries.  The delay after failed attempt *i* (1-based) is
    ``backoff_s * multiplier**(i-1)``, scaled by a deterministic jitter
    factor in ``[1-jitter, 1+jitter]`` drawn from ``(seed, i)`` alone.
    ``retry_on`` lists the transient exception types worth retrying;
    configuration errors are deliberately not among the defaults — retrying
    a malformed request can never succeed.
    """

    #: exception types retried by default (transient substrate failures)
    DEFAULT_RETRY_ON = (LaunchError, DeviceError, DeadlineExceeded)

    def __init__(self, max_attempts: int = 3, *,
                 backoff_s: float = 0.01,
                 multiplier: float = 2.0,
                 jitter: float = 0.1,
                 seed: int = 2025,
                 retry_on: Tuple[type, ...] = DEFAULT_RETRY_ON,
                 sleep: Callable[[float], None] = time.sleep):
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_s < 0 or multiplier < 1.0 or not 0.0 <= jitter <= 1.0:
            raise ConfigurationError(
                "invalid backoff: need backoff_s >= 0, multiplier >= 1, "
                "0 <= jitter <= 1"
            )
        self.max_attempts = int(max_attempts)
        self.backoff_s = float(backoff_s)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.retry_on = tuple(retry_on)
        self.sleep = sleep

    def retryable(self, exc: BaseException) -> bool:
        """True when *exc* is a transient failure worth another attempt."""
        return isinstance(exc, self.retry_on)

    def delay_s(self, attempt: int) -> float:
        """Backoff delay after failed *attempt* (1-based), jitter included."""
        base = self.backoff_s * self.multiplier ** (max(attempt, 1) - 1)
        digest = hashlib.sha256(f"{self.seed}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def call(self, fn: Callable[[], object], *,
             on_retry: Optional[Callable[[int, BaseException], None]] = None):
        """Run ``fn()`` under this policy; the last failure propagates."""
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except ReproError as exc:
                if attempt >= self.max_attempts or not self.retryable(exc):
                    raise
                _obs_metrics.inc("retry_attempts_total")
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(self.delay_s(attempt))

    def as_dict(self) -> Dict[str, object]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
            "multiplier": self.multiplier,
            "jitter": self.jitter,
            "seed": self.seed,
        }


class Deadline:
    """A wall-clock budget, checked cooperatively or enforced via a thread.

    ``run(fn, *args)`` executes *fn* on a daemon worker and joins it for
    the remaining budget; on expiry the worker is abandoned (daemonised —
    the simulator cannot be interrupted safely mid-kernel) and
    :class:`DeadlineExceeded` is raised.  ``check()`` is the cheap
    cooperative form for code with natural yield points.
    """

    def __init__(self, timeout_ms: float, *,
                 clock: Callable[[], float] = time.monotonic):
        if timeout_ms is None or timeout_ms <= 0:
            raise ConfigurationError(
                f"deadline timeout_ms must be > 0, got {timeout_ms}")
        self.timeout_ms = float(timeout_ms)
        self._clock = clock
        self._started = clock()

    @property
    def elapsed_ms(self) -> float:
        return (self._clock() - self._started) * 1e3

    @property
    def remaining_ms(self) -> float:
        return self.timeout_ms - self.elapsed_ms

    @property
    def expired(self) -> bool:
        return self.remaining_ms <= 0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.timeout_ms:g} ms deadline "
                f"({self.elapsed_ms:.1f} ms elapsed)",
                timeout_ms=self.timeout_ms,
            )

    def run(self, fn: Callable[..., object], *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` within the remaining budget."""
        self.check(getattr(fn, "__name__", "operation"))
        box: Dict[str, object] = {}
        done = threading.Event()

        def target() -> None:
            try:
                box["value"] = fn(*args, **kwargs)
            except BaseException as exc:  # delivered to the caller below
                box["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(target=target, daemon=True,
                                  name="repro-deadline")
        worker.start()
        done.wait(max(self.remaining_ms, 0.0) / 1e3)
        if not done.is_set():
            raise DeadlineExceeded(
                f"{getattr(fn, '__name__', 'operation')} exceeded its "
                f"{self.timeout_ms:g} ms deadline",
                timeout_ms=self.timeout_ms,
            )
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box.get("value")


class CircuitBreaker:
    """Per-key failure isolation with an open/half-open cooldown cycle.

    ``threshold`` consecutive failures for one key open its circuit:
    :meth:`allow` returns False (and :meth:`check` raises
    :class:`CircuitOpenError`) until ``cooldown_s`` has passed, after which
    exactly one probe run is let through (half-open).  A success closes the
    circuit and clears the count; a failure re-opens it for another
    cooldown.  Thread-safe; keys are arbitrary hashables.
    """

    def __init__(self, threshold: int = 3, *, cooldown_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be >= 1, got {threshold}")
        if cooldown_s < 0:
            raise ConfigurationError("breaker cooldown_s must be >= 0")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        # key -> [consecutive failures, opened-at timestamp or None, probing]
        self._states: Dict[object, list] = {}

    def _state(self, key):
        state = self._states.get(key)
        if state is None:
            state = [0, None, False]
            self._states[key] = state
        return state

    def allow(self, key) -> bool:
        """True when a run for *key* may proceed right now."""
        with self._lock:
            failures, opened_at, probing = self._state(key)
            if opened_at is None:
                return True
            if probing:
                return False  # one half-open probe at a time
            if self._clock() - opened_at >= self.cooldown_s:
                self._state(key)[2] = True  # half-open: admit one probe
                _obs_metrics.inc("breaker_half_open_total")
                return True
            return False

    def check(self, key) -> None:
        """Raise :class:`CircuitOpenError` when *key*'s circuit is open."""
        if not self.allow(key):
            raise CircuitOpenError(
                f"circuit open for {key!r}: {self.threshold} consecutive "
                f"failure(s); retry after the {self.cooldown_s:g} s cooldown",
                key=key,
            )

    def record_success(self, key) -> None:
        with self._lock:
            was_open = self._state(key)[1] is not None
            self._states[key] = [0, None, False]
        if was_open:
            # Only real recoveries count as a closed transition — a routine
            # success on an already-closed circuit is not a state change.
            _obs_metrics.inc("breaker_closed_total")

    def record_failure(self, key) -> None:
        with self._lock:
            state = self._state(key)
            was_open = state[1] is not None and not state[2]
            state[0] += 1
            state[2] = False
            if state[0] >= self.threshold:
                state[1] = self._clock()
                opened = not was_open  # closed/half-open -> open
            else:
                opened = False
        if opened:
            _obs_metrics.inc("breaker_open_total")

    def state(self, key) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` for *key*."""
        with self._lock:
            failures, opened_at, probing = self._state(key)
            if opened_at is None:
                return "closed"
            if probing or self._clock() - opened_at >= self.cooldown_s:
                return "half-open"
            return "open"

    def info(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of every tracked key's failure count and state."""
        with self._lock:
            keys = list(self._states)
        return {str(key): {"failures": self._states[key][0],
                           "state": self.state(key)}
                for key in keys}
