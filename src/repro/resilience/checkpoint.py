"""Journaled sweep checkpointing and failure records.

A long sweep should survive interruption and partial failure.  The
:class:`CheckpointJournal` is an append-only JSON-lines file: one line per
finished request, keyed by the same canonical request digest the on-disk
result cache uses.  Resuming a sweep replays the journal — completed
requests are answered from their recorded result export without re-running,
previously *failed* requests get a fresh chance — and a torn tail line
(the process died mid-write) is skipped, never fatal.

Failures that a sweep is told to survive (``on_error="skip"|"retry"``)
come back as :class:`FailureRecord` entries in the result list, preserving
sweep order, so callers can always line results up with configurations.

:class:`SweepResilience` bundles the per-sweep wiring — journal, retry
policy, per-attempt deadline, circuit breaker, on-error mode — and is what
:meth:`repro.harness.sweep.Sweep.run_workload` builds from its resilience
keyword arguments.  Thread-safe throughout: the sync ``workers=N`` pool and
``run_workload_async`` share one journal and one breaker.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.errors import CircuitOpenError, ConfigurationError, ReproError
from .degrade import run_resilient
from .policy import CircuitBreaker, RetryPolicy

__all__ = ["FailureRecord", "CheckpointJournal", "SweepResilience",
           "request_digest", "ON_ERROR_MODES"]

#: schema tag written with every journal line; bump to invalidate old files
_JOURNAL_SCHEMA = "repro.sweep-checkpoint/v1"

#: how run_workload treats a request that still fails after its retries
ON_ERROR_MODES = ("raise", "skip", "retry")


def request_digest(request) -> str:
    """Canonical digest of *request* — the result cache's disk key.

    Reusing :meth:`ResultCache.disk_key` means a checkpoint entry and a
    result-cache entry for the same request agree on identity (both fold
    the package version in, so a release boundary invalidates both).
    """
    from ..workloads.cache import ResultCache

    return ResultCache.disk_key(request)


@dataclass
class FailureRecord:
    """One request a resilient sweep gave up on.

    Takes a result's place in the sweep-ordered output list, so it mirrors
    the identification fields a caller would read off a result.  ``ok`` is
    always False — results and failures can be split with a simple
    attribute test (results expose no ``ok``; use ``isinstance`` or
    ``getattr(r, "ok", True)``).
    """

    workload: str
    digest: str
    request: Dict[str, object]
    error_type: str
    message: str
    stage: str = "run"  # "run" | "circuit-open"
    attempts: int = 1
    ok: bool = field(default=False, init=False)

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "digest": self.digest,
            "request": self.request,
            "error_type": self.error_type,
            "message": self.message,
            "stage": self.stage,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FailureRecord":
        return cls(
            workload=str(payload.get("workload", "")),
            digest=str(payload.get("digest", "")),
            request=dict(payload.get("request", {})),
            error_type=str(payload.get("error_type", "")),
            message=str(payload.get("message", "")),
            stage=str(payload.get("stage", "run")),
            attempts=int(payload.get("attempts", 1)),
        )

    @classmethod
    def from_exception(cls, request, exc: BaseException, *,
                       digest: str = "", stage: str = "run",
                       attempts: int = 1) -> "FailureRecord":
        return cls(
            workload=request.workload,
            digest=digest or request_digest(request),
            request=request.as_dict(),
            error_type=type(exc).__name__,
            message=str(exc),
            stage=stage,
            attempts=attempts,
        )


class CheckpointJournal:
    """Append-only JSON-lines journal of finished sweep requests.

    ``resume=True`` (the default) loads any existing file; ``resume=False``
    truncates it and starts fresh.  Loading is tolerant: unparseable lines
    (a torn tail from an interrupted write) and lines with a foreign schema
    tag are skipped.  Appends re-open the file per write and flush+fsync,
    so every *completed* request survives a crash.
    """

    def __init__(self, path: str, *, resume: bool = True):
        self.path = str(path)
        self._lock = threading.Lock()
        self._completed: Dict[str, dict] = {}
        self._failed: Dict[str, dict] = {}
        self.skipped_lines = 0
        if resume:
            self._load()
        elif os.path.exists(self.path):
            with open(self.path, "w", encoding="utf-8"):
                pass

    # ---------------------------------------------------------------- loading
    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                self.skipped_lines += 1
                continue
            if not isinstance(entry, dict) \
                    or entry.get("schema") != _JOURNAL_SCHEMA:
                self.skipped_lines += 1
                continue
            digest = entry.get("digest")
            if not digest:
                self.skipped_lines += 1
                continue
            if entry.get("status") == "ok":
                self._completed[digest] = entry
                self._failed.pop(digest, None)
            elif entry.get("status") == "failed":
                # remembered for reporting only: a resumed sweep re-runs it
                self._failed[digest] = entry

    # --------------------------------------------------------------- querying
    def get(self, request):
        """The rehydrated result for a completed *request*, or None."""
        from ..workloads.cache import _result_from_export

        digest = request_digest(request)
        with self._lock:
            entry = self._completed.get(digest)
        if entry is None:
            return None
        return _result_from_export(request, entry.get("result", {}))

    @property
    def completed_count(self) -> int:
        with self._lock:
            return len(self._completed)

    def failures(self) -> List[FailureRecord]:
        """Failure records remembered from previous (resumed) runs."""
        with self._lock:
            entries = list(self._failed.values())
        return [FailureRecord.from_dict(e.get("failure", {}))
                for e in entries]

    def summary(self) -> Dict[str, int]:
        with self._lock:
            return {"completed": len(self._completed),
                    "failed": len(self._failed),
                    "skipped_lines": self.skipped_lines}

    # -------------------------------------------------------------- recording
    def record_success(self, request, result, *,
                       digest: Optional[str] = None) -> None:
        digest = digest or request_digest(request)
        entry = {
            "schema": _JOURNAL_SCHEMA,
            "status": "ok",
            "digest": digest,
            "workload": request.workload,
            "result": result.as_dict(),
        }
        with self._lock:
            self._completed[digest] = entry
            self._failed.pop(digest, None)
            self._append(entry)

    def record_failure(self, failure: FailureRecord) -> None:
        entry = {
            "schema": _JOURNAL_SCHEMA,
            "status": "failed",
            "digest": failure.digest,
            "workload": failure.workload,
            "failure": failure.as_dict(),
        }
        with self._lock:
            self._failed[failure.digest] = entry
            self._append(entry)

    def _append(self, entry: dict) -> None:
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, default=str) + "\n")
            fh.flush()
            os.fsync(fh.fileno())


class SweepResilience:
    """The per-sweep bundle of resilience mechanisms.

    Built by ``Sweep.run_workload`` from its keyword arguments; wraps the
    sweep's per-request runner in two layers:

    * :meth:`wrap_run` — the *inner* runner (what the result cache calls on
      a miss): retries, per-attempt deadline and the degradation ladder via
      :func:`~repro.resilience.degrade.run_resilient`;
    * :meth:`wrap_request` — the *outer* runner: checkpoint-journal lookup,
      circuit-breaker admission, failure capture per the ``on_error`` mode.
    """

    def __init__(self, *, on_error: str = "raise",
                 journal: Optional[CheckpointJournal] = None,
                 retry: Optional[RetryPolicy] = None,
                 timeout_ms: Optional[float] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 degrade: bool = True):
        if on_error not in ON_ERROR_MODES:
            raise ConfigurationError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}")
        if retry is not None and not isinstance(retry, RetryPolicy):
            retry = RetryPolicy(max_attempts=int(retry))
        if retry is None and on_error == "retry":
            retry = RetryPolicy()
        self.on_error = on_error
        self.journal = journal
        self.retry = retry
        self.timeout_ms = None if timeout_ms is None else float(timeout_ms)
        self.breaker = breaker
        self.degrade = degrade
        self.failures: List[FailureRecord] = []
        self._lock = threading.Lock()

    def wrap_run(self, workload) -> Callable:
        """The inner runner: ``Workload.run`` under retry/deadline/ladder."""
        if self.retry is None and self.timeout_ms is None:
            return workload.run

        def resilient(request):
            return run_resilient(workload, request, retry=self.retry,
                                 timeout_ms=self.timeout_ms,
                                 degrade=self.degrade)

        return resilient

    def wrap_request(self, workload, runner: Callable) -> Callable:
        """The outer runner: checkpoint + breaker + on-error handling."""

        def wrapped(request):
            digest = request_digest(request)
            if self.journal is not None:
                stored = self.journal.get(request)
                if stored is not None:
                    return stored
            key = (workload.name, request.gpu, request.backend)
            if self.breaker is not None and not self.breaker.allow(key):
                exc = CircuitOpenError(
                    f"circuit open for {key!r}", key=key)
                return self._failed(request, exc, digest,
                                    stage="circuit-open", raise_exc=exc)
            try:
                result = runner(request)
            except ReproError as exc:
                if self.breaker is not None:
                    self.breaker.record_failure(key)
                return self._failed(request, exc, digest)
            if self.breaker is not None:
                self.breaker.record_success(key)
            if self.journal is not None:
                self.journal.record_success(request, result, digest=digest)
            return result

        return wrapped

    def _failed(self, request, exc, digest: str, *, stage: str = "run",
                raise_exc=None):
        attempts = 1
        if self.retry is not None and stage == "run":
            attempts = self.retry.max_attempts
        failure = FailureRecord.from_exception(request, exc, digest=digest,
                                               stage=stage, attempts=attempts)
        with self._lock:
            self.failures.append(failure)
        if self.journal is not None:
            self.journal.record_failure(failure)
        if self.on_error == "raise":
            raise (raise_exc if raise_exc is not None else exc)
        return failure
