"""Resilience layer: deterministic chaos, recovery policies, checkpoints.

Four pieces, each usable alone and composed by the sweep harness:

* :mod:`~repro.resilience.faults` — seedable, deterministic fault
  injection wired into the device/executor/diskstore layers (off by
  default, zero-overhead when disabled);
* :mod:`~repro.resilience.policy` — :class:`RetryPolicy` (exponential
  backoff with seeded jitter), :class:`Deadline` (per-run wall-clock
  budget), :class:`CircuitBreaker` (per-configuration failure isolation);
* :mod:`~repro.resilience.degrade` — :func:`run_resilient`, the
  retry-then-degrade wrapper around ``Workload.run`` (executor ladder,
  tuned→untuned fallback, ``provenance["resilience"]`` records);
* :mod:`~repro.resilience.checkpoint` — journaled sweep checkpointing,
  :class:`FailureRecord` collection and the :class:`SweepResilience`
  bundle behind ``Sweep.run_workload(..., checkpoint=..., on_error=...)``.
"""

from .checkpoint import (
    ON_ERROR_MODES,
    CheckpointJournal,
    FailureRecord,
    SweepResilience,
    request_digest,
)
from .degrade import degradation_ladder, run_resilient
from .faults import (
    FAULT_SITES,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
    active_injector,
    install_fault_plan,
)
from .policy import CircuitBreaker, Deadline, RetryPolicy

__all__ = [
    "FAULT_SITES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "active_injector",
    "install_fault_plan",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "run_resilient",
    "degradation_ladder",
    "CheckpointJournal",
    "FailureRecord",
    "SweepResilience",
    "request_digest",
    "ON_ERROR_MODES",
]
