"""Graceful degradation for workload runs: retry, then step down.

:func:`run_resilient` wraps ``Workload.run`` with a two-dimensional
recovery strategy:

* **within a step**: transient failures (launch/device errors, deadline
  expiry, a failed verification) are retried under a
  :class:`~repro.resilience.policy.RetryPolicy`;
* **across steps**: when a step keeps failing, the run degrades along a
  deterministic ladder — first ``tune="off"`` (a corrupt or infeasible
  tuning-database winner must never kill a run the default geometry can
  serve), then executor fallback ``vectorized → cooperative → sequential``
  (the three modes are bit-identical by the PR 3 contract, so a degraded
  result is still *the* result).

Every result produced here carries a structured
``provenance["resilience"]`` record: how many attempts ran, whether and
how the run degraded, and the per-attempt error history — sweep reports
can tell a clean run from one that survived on the fallback path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.errors import ReproError, VerificationError
from ..obs import metrics as _obs_metrics
from ..obs import trace as _trace
from .policy import Deadline, RetryPolicy

__all__ = ["run_resilient", "degradation_ladder"]

#: executor fallback chain: key = the mode a step ran with, value = the
#: modes to try next (in order) when that step keeps failing
_EXECUTOR_FALLBACK = {
    "auto": ("cooperative", "sequential"),
    "vectorized": ("cooperative", "sequential"),
    "cooperative": ("sequential",),
    "sequential": (),
}


class _VerificationFailed(ReproError):
    """Internal: a run completed but its verification verdict is False.

    ``Workload.run`` folds :class:`VerificationError` into the result, so
    the retry loop re-raises it as this carrier to route the *completed but
    wrong* outcome through the same retry/degrade machinery as a crash.
    """

    def __init__(self, result):
        detail = result.verification.detail or "verification failed"
        super().__init__(detail)
        self.result = result


def degradation_ladder(request) -> List[object]:
    """The ordered request variants :func:`run_resilient` may fall back to.

    Starts with *request* itself; appends the untuned variant when the
    request is tuned; then appends the executor downgrades of the untuned
    (or original) variant.  The ladder is deterministic and duplicates are
    dropped, so the worst case is a short, fixed list of steps.
    """
    steps = [request]
    base = request
    if request.tune != "off":
        base = request.replace(tune="off")
        steps.append(base)
    for mode in _EXECUTOR_FALLBACK.get(base.executor, ()):
        steps.append(base.replace(executor=mode))
    return steps


def run_resilient(workload, request, *,
                  retry: Optional[RetryPolicy] = None,
                  timeout_ms: Optional[float] = None,
                  degrade: bool = True,
                  check_verification: bool = True):
    """Run *request* with retries, a per-attempt deadline and degradation.

    *retry* may be a :class:`RetryPolicy` or an int (max attempts per
    ladder step); None means a single attempt per step.  *timeout_ms*
    bounds **each attempt** with a :class:`~repro.resilience.policy.Deadline`.
    ``degrade=False`` disables the ladder (retries only).  With
    ``check_verification`` (default) a completed run whose verification
    verdict is False counts as a failed attempt — a corruption fault
    surfaces as a wrong answer, not an exception, and deserves a retry just
    as much.

    Raises the last error when every step is exhausted; when a step at
    least *completed* (with a failing verdict), that result is returned
    instead, its resilience record flagging ``verification_failed``.
    """
    policy = _as_policy(retry)
    steps = degradation_ladder(request) if degrade else [request]
    history: List[Dict[str, object]] = []
    attempts = 0
    last_error: Optional[ReproError] = None
    fallback_result = None
    fallback_step = 0

    for step_index, step in enumerate(steps):
        if step_index > 0:
            # Entering a lower rung of the ladder is a degradation step —
            # counted once per rung actually attempted.
            _obs_metrics.inc("degradation_steps_total")
        for attempt in range(1, policy.max_attempts + 1):
            attempts += 1
            if attempt > 1:
                _obs_metrics.inc("retry_attempts_total")
            try:
                collector = _trace._ACTIVE
                if collector is None:
                    result = _run_once(workload, step, timeout_ms)
                else:
                    with collector.span(f"resilience.attempt[{attempts}]",
                                        step=step_index,
                                        executor=step.executor,
                                        tune=step.tune):
                        result = _run_once(workload, step, timeout_ms)
                if check_verification and result.verification.ran \
                        and not result.verification.passed:
                    raise _VerificationFailed(result)
            except ReproError as exc:
                history.append({
                    "step": step_index,
                    "executor": step.executor,
                    "tune": step.tune,
                    "attempt": attempt,
                    "error_type": (VerificationError.__name__
                                   if isinstance(exc, _VerificationFailed)
                                   else type(exc).__name__),
                    "error": str(exc),
                })
                if isinstance(exc, _VerificationFailed):
                    fallback_result = exc.result
                    fallback_step = step_index
                    if attempt < policy.max_attempts:
                        policy.sleep(policy.delay_s(attempt))
                        continue
                    break  # verdict stuck false: try the next ladder step
                last_error = exc
                if attempt < policy.max_attempts and policy.retryable(exc):
                    policy.sleep(policy.delay_s(attempt))
                    continue
                break  # not retryable / out of attempts: next ladder step
            _attach(result, request, step, step_index, attempts, history,
                    timeout_ms, verification_failed=False)
            return result

    if fallback_result is not None:
        _attach(fallback_result, request, steps[fallback_step],
                fallback_step, attempts, history, timeout_ms,
                verification_failed=True)
        return fallback_result
    assert last_error is not None
    raise last_error


def _as_policy(retry) -> RetryPolicy:
    if retry is None:
        return RetryPolicy(max_attempts=1)
    if isinstance(retry, RetryPolicy):
        return retry
    return RetryPolicy(max_attempts=int(retry))


def _run_once(workload, request, timeout_ms: Optional[float]):
    if timeout_ms is None:
        return workload.run(request)
    return Deadline(timeout_ms).run(workload.run, request)


def _attach(result, requested, ran, step_index: int, attempts: int,
            history: List[Dict[str, object]], timeout_ms: Optional[float],
            *, verification_failed: bool) -> None:
    """Write the structured ``provenance["resilience"]`` record."""
    result.provenance["resilience"] = {
        "attempts": attempts,
        "retried": attempts > 1,
        "degraded": step_index > 0,
        "ladder_step": step_index,
        "requested": {"executor": requested.executor, "tune": requested.tune},
        "ran": {"executor": ran.executor, "tune": ran.tune},
        "timeout_ms": timeout_ms,
        "verification_failed": verification_failed,
        "history": list(history),
    }
