"""Deterministic fault injection for the simulated substrate.

Chaos testing a deterministic simulator only makes sense if the chaos is
deterministic too: the same :class:`FaultPlan` (a seed plus a list of
:class:`FaultRule`\\ s) against the same run sequence fires the same faults
at the same operations, every time.  Each injection *site* keeps a global
occurrence counter; whether occurrence *i* of a site faults is decided
either by an explicit index list (``indices=[0, 3]``) or by a seeded hash
draw (``probability=0.2``) — never by wall clock or shared RNG state, so
concurrent sweeps see a reproducible fault schedule per site.

Injection sites wired into the existing layers
----------------------------------------------

================== =========================================================
``transfer.h2d``    raise :class:`DeviceError` before an H2D copy executes
``transfer.d2h``    raise :class:`DeviceError` before a D2H copy executes
``corrupt.h2d``     flip the first element of the device buffer after H2D
``corrupt.d2h``     flip the first element of the host destination after D2H
``launch``          raise :class:`LaunchError` at :meth:`KernelExecutor.launch`
``launch.vectorized`` raise :class:`LaunchError` inside ``run_vectorized``
                    (covers graph-replay thunks, which bypass ``launch``)
``latency``         sleep ``latency_ms`` inside :meth:`KernelExecutor.launch`
``latency.vectorized`` sleep inside ``run_vectorized``
``diskstore.read``  make one JSON store read report a miss (torn read)
================== =========================================================

The injector is **off by default** and costs one module-attribute load on
the hot paths when disabled (``_ACTIVE is None`` — guarded by the chaos
suite's zero-overhead test).  Install one for a scope with::

    with install_fault_plan(FaultPlan(seed=7, rules=[...])) as injector:
        ...
    injector.stats()   # what actually fired

Injected exceptions are ordinary :class:`DeviceError` / :class:`LaunchError`
instances carrying ``injected=True`` and an ``[fault-injection]`` marker, so
every retry/degradation path exercises exactly the production error route.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError, DeviceError, LaunchError
from ..obs import metrics as _obs_metrics

__all__ = [
    "FAULT_SITES",
    "FaultRule",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "install_fault_plan",
    "active_injector",
]

#: every site the substrate exposes; rules naming anything else are rejected
FAULT_SITES = (
    "transfer.h2d",
    "transfer.d2h",
    "corrupt.h2d",
    "corrupt.d2h",
    "launch",
    "launch.vectorized",
    "latency",
    "latency.vectorized",
    "diskstore.read",
)


@dataclass(frozen=True)
class FaultRule:
    """One site's fault schedule.

    Exactly one trigger applies: an explicit occurrence ``indices`` tuple
    (fire at the i-th time the site is reached, 0-based, globally counted
    per injector) or a seeded ``probability`` draw per occurrence.
    ``max_faults`` caps how often the rule may fire; ``match`` restricts the
    rule to operations whose label contains the substring (e.g. a buffer
    label); ``latency_ms`` is the sleep for the latency sites.
    """

    site: str
    probability: float = 1.0
    indices: Optional[Tuple[int, ...]] = None
    max_faults: Optional[int] = None
    match: str = ""
    latency_ms: float = 0.0

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{FAULT_SITES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.indices is not None:
            object.__setattr__(self, "indices",
                               tuple(int(i) for i in self.indices))
            if any(i < 0 for i in self.indices):
                raise ConfigurationError("fault indices must be >= 0")
        if self.max_faults is not None and self.max_faults < 1:
            raise ConfigurationError("max_faults must be >= 1")
        if self.latency_ms < 0:
            raise ConfigurationError("latency_ms must be >= 0")

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"site": self.site}
        if self.indices is not None:
            out["indices"] = list(self.indices)
        else:
            out["probability"] = self.probability
        if self.max_faults is not None:
            out["max_faults"] = self.max_faults
        if self.match:
            out["match"] = self.match
        if self.latency_ms:
            out["latency_ms"] = self.latency_ms
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultRule":
        known = {"site", "probability", "indices", "max_faults", "match",
                 "latency_ms"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault-rule key(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs = dict(payload)
        if "indices" in kwargs and kwargs["indices"] is not None:
            kwargs["indices"] = tuple(kwargs["indices"])
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of fault rules; JSON round-trippable."""

    seed: int = 2025
    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    def as_dict(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "rules": [r.as_dict() for r in self.rules]}

    def dumps(self) -> str:
        return json.dumps(self.as_dict(), indent=2)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigurationError("fault plan must be a JSON object")
        unknown = set(payload) - {"seed", "rules"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault-plan key(s) {sorted(unknown)}")
        rules = payload.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise ConfigurationError("fault-plan 'rules' must be a list")
        return cls(seed=int(payload.get("seed", 2025)),
                   rules=tuple(FaultRule.from_dict(r) for r in rules))

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid fault-plan JSON: {exc}")
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan {path!r}: {exc}")
        return cls.loads(text)


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, for post-run inspection and determinism checks."""

    site: str
    index: int
    key: str
    kind: str  # "error" | "corrupt" | "latency" | "miss"


def _draw(seed: int, site: str, index: int) -> float:
    """Deterministic uniform [0, 1) draw for occurrence *index* of *site*.

    Hash-based rather than ``random.Random`` so the draw for occurrence
    *i* never depends on how many other sites were visited in between.
    """
    digest = hashlib.sha256(f"{seed}:{site}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FaultInjector:
    """Executes a :class:`FaultPlan` against the substrate's hook points.

    Thread-safe: per-site occurrence counters and the fired-event log are
    guarded by one lock.  The decision for occurrence *i* of a site depends
    only on ``(plan.seed, site, i)`` and the rule list, so a retried
    operation — which arrives as a *later* occurrence — sees a fresh
    decision, exactly like real transient faults.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}  # rule position -> times fired
        self.events: List[FaultEvent] = []
        self._rules_by_site: Dict[str, List[Tuple[int, FaultRule]]] = {}
        for pos, rule in enumerate(plan.rules):
            self._rules_by_site.setdefault(rule.site, []).append((pos, rule))

    # --------------------------------------------------------------- decision
    def decide(self, site: str, key: str = "",
               kind: str = "error") -> Optional[FaultRule]:
        """Consume one occurrence of *site*; the matching rule if it fires."""
        rules = self._rules_by_site.get(site)
        with self._lock:
            index = self._counts.get(site, 0)
            self._counts[site] = index + 1
            if not rules:
                return None
            for pos, rule in rules:
                if rule.match and rule.match not in key:
                    continue
                fired = self._fired.get(pos, 0)
                if rule.max_faults is not None and fired >= rule.max_faults:
                    continue
                if rule.indices is not None:
                    hit = index in rule.indices
                else:
                    hit = _draw(self.plan.seed, site, index) < rule.probability
                if hit:
                    self._fired[pos] = fired + 1
                    self.events.append(FaultEvent(site=site, index=index,
                                                  key=key, kind=kind))
                    _obs_metrics.inc("fault_injections_fired_total",
                                     site=site)
                    return rule
        return None

    # ------------------------------------------------------------ hook points
    def fail_transfer(self, kind: str, label: str) -> None:
        """Hook for ``transfer.h2d`` / ``transfer.d2h`` (raises)."""
        rule = self.decide(f"transfer.{kind}", label)
        if rule is not None:
            exc = DeviceError(
                f"[fault-injection] {kind} transfer of buffer {label!r} "
                f"failed (site transfer.{kind})"
            )
            exc.injected = True
            raise exc

    def corrupt_transfer(self, kind: str, label: str, sink) -> None:
        """Hook for ``corrupt.h2d`` / ``corrupt.d2h`` (flips one element)."""
        rule = self.decide(f"corrupt.{kind}", label, kind="corrupt")
        if rule is not None:
            corrupt_array(sink)

    def fail_launch(self, site: str, name: str) -> None:
        """Hook for ``launch`` / ``launch.vectorized`` (raises)."""
        rule = self.decide(site, name)
        if rule is not None:
            exc = LaunchError(
                f"[fault-injection] kernel {name!r} launch failed "
                f"(site {site})"
            )
            exc.injected = True
            raise exc

    def inject_latency(self, site: str, name: str, *,
                       sleep=time.sleep) -> None:
        """Hook for ``latency`` / ``latency.vectorized`` (sleeps)."""
        rule = self.decide(site, name, kind="latency")
        if rule is not None and rule.latency_ms > 0:
            sleep(rule.latency_ms / 1e3)

    def corrupt_read(self, path: str) -> bool:
        """Hook for ``diskstore.read``; True turns the read into a miss."""
        return self.decide("diskstore.read", path, kind="miss") is not None

    # ------------------------------------------------------------- statistics
    def stats(self) -> Dict[str, object]:
        with self._lock:
            fired_by_site: Dict[str, int] = {}
            for event in self.events:
                fired_by_site[event.site] = fired_by_site.get(event.site, 0) + 1
            return {
                "occurrences": dict(self._counts),
                "fired": fired_by_site,
                "total_fired": len(self.events),
            }


def corrupt_array(array) -> None:
    """Deterministically damage *array* in place (a garbage transfer).

    Every seventh element is overwritten, starting from the middle — dense
    enough that any interior region a verifier actually checks is hit
    (grid workloads often exclude boundary cells, so a single corner flip
    could go unnoticed), sparse enough to still look like corruption
    rather than a missing transfer.  Floats get an enormous finite value
    (guaranteed to blow any relative tolerance); integers/bools get
    bit-flipped.
    """
    import numpy as np

    flat = array.reshape(-1)
    if flat.size == 0:  # pragma: no cover - zero-length buffers
        return
    sel = slice(flat.size // 2 % 7, None, 7)
    if np.issubdtype(flat.dtype, np.floating):
        flat[sel] = flat.dtype.type(1e30)
    elif flat.dtype == np.bool_:
        flat[sel] = ~flat[sel]
    else:
        flat[sel] = ~flat[sel]


# ---------------------------------------------------------------------------
# The module-level active injector (the hot paths read this attribute)
# ---------------------------------------------------------------------------

#: the currently installed injector, or None (the default, zero-cost path)
_ACTIVE: Optional[FaultInjector] = None
_install_lock = threading.Lock()


def active_injector() -> Optional[FaultInjector]:
    """The installed :class:`FaultInjector`, or None when faults are off."""
    return _ACTIVE


@contextlib.contextmanager
def install_fault_plan(plan) -> Iterator[FaultInjector]:
    """Activate a :class:`FaultPlan` (or ready injector) for a ``with`` scope.

    Installation is process-global — the hook points live in the device and
    executor layers, below any per-sweep state — and exclusive: nesting a
    second plan raises rather than silently replacing the first schedule.
    """
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    global _ACTIVE
    with _install_lock:
        if _ACTIVE is not None:
            raise ConfigurationError(
                "a fault plan is already installed; fault injection does "
                "not nest"
            )
        _ACTIVE = injector
    try:
        yield injector
    finally:
        with _install_lock:
            _ACTIVE = None
